"""Fully-parallel bespoke MLP baseline (state of the art [4]).

Printed bespoke MLPs hardwire every weight of a small fully-connected
network; all neurons of all layers are dedicated hardware and the whole
forward pass happens combinationally in one (long) evaluation.  Each neuron
is a bespoke constant-multiplier/adder-tree cone followed by a ReLU (sign
mask); the output layer feeds a combinational argmax.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

import numpy as np

from repro.core.report import ClassifierHardwareReport
from repro.core.voter import CombinationalArgmaxVoter
from repro.hw.activity import PARALLEL_CASCADE_GLITCH, datapath_toggles, scale_toggles
from repro.hw.area import AreaAnalyzer
from repro.hw.cells import CellLibrary
from repro.hw.netlist import HardwareBlock, parallel, series
from repro.hw.pdk import EGFET_PDK
from repro.hw.power import PowerAnalyzer
from repro.hw.rtl.registers import counter_bits
from repro.hw.synthesis import synthesize_constant_mac
from repro.hw.timing import TimingAnalyzer
from repro.ml.fixed_point import required_bits_for_integer
from repro.ml.metrics import accuracy_percent
from repro.ml.quantization import QuantizedMLPModel


def _relu_block(width: int, name: str) -> HardwareBlock:
    """Hardware of an integer ReLU: mask the value with the inverted sign bit."""
    counts = Counter({"INV": 1, "AND2": width})
    path = Counter({"INV": 1, "AND2": 1})
    return HardwareBlock(
        name=name, counts=counts, path=path, toggles=datapath_toggles(counts, 2)
    )


class ParallelMLPDesign:
    """Fully-parallel bespoke MLP circuit generated from a quantized MLP."""

    def __init__(
        self,
        model: QuantizedMLPModel,
        library: Optional[CellLibrary] = None,
        dataset: str = "",
    ) -> None:
        self.model = model
        self.library = library or EGFET_PDK
        self.dataset = dataset
        self._layer_output_bits = self._compute_layer_widths()
        # Per-neuron synthesis dominates evaluation time; the circuit is
        # immutable once constructed, so build the block at most once.
        self._hardware_block: Optional[HardwareBlock] = None

    def _compute_layer_widths(self) -> list:
        """Worst-case signed width of every layer's outputs (no re-quantization)."""
        widths = []
        max_act = self.model.input_format.max_code
        act_bound = np.full(self.model.layer_sizes[0], max_act, dtype=np.int64)
        for W, b in zip(self.model.weight_codes, self.model.bias_codes):
            bound = np.abs(W.T) @ act_bound + np.abs(b)
            width = max(
                int(required_bits_for_integer(int(bound.max()), signed=True)), 2
            )
            widths.append(width)
            # ReLU keeps magnitudes, so the bound carries to the next layer.
            act_bound = bound
        return widths

    # ------------------------------------------------------------------ #
    @property
    def n_features(self) -> int:
        return self.model.n_features

    @property
    def n_classes(self) -> int:
        return self.model.n_classes

    @property
    def cycles_per_classification(self) -> int:
        """The parallel MLP classifies in a single evaluation."""
        return 1

    def hardware(self) -> HardwareBlock:
        """Neuron cones for every layer, ReLUs, and the output argmax (cached)."""
        if self._hardware_block is not None:
            return self._hardware_block
        layers = []
        for layer_idx, (W, b) in enumerate(
            zip(self.model.weight_codes, self.model.bias_codes)
        ):
            fan_in, fan_out = W.shape
            is_output = layer_idx == self.model.n_layers - 1
            out_bits = self._layer_output_bits[layer_idx]
            in_bits = (
                self.model.input_format.total_bits
                if layer_idx == 0
                else self._layer_output_bits[layer_idx - 1]
            )
            neurons = []
            for j in range(fan_out):
                cone, _ = synthesize_constant_mac(
                    W[:, j],
                    int(b[j]),
                    input_bits=in_bits,
                    score_bits=out_bits,
                    name=f"l{layer_idx}_n{j}",
                )
                if not is_output:
                    cone = series(f"l{layer_idx}_n{j}_relu", [cone, _relu_block(out_bits, "relu")])
                neurons.append(cone)
            layers.append(parallel(f"layer{layer_idx}", neurons))
        index_bits = counter_bits(max(self.n_classes, 2))
        argmax = CombinationalArgmaxVoter(
            self.n_classes, self._layer_output_bits[-1], index_bits
        ).hardware()
        design = series(f"parallel_mlp[{self.dataset or 'design'}]", layers + [argmax])
        # Like the parallel SVM baselines, the bespoke MLP is one deep
        # combinational cascade and glitches multiply across its layers.
        design.toggles = scale_toggles(design.toggles, PARALLEL_CASCADE_GLITCH)
        self._hardware_block = design
        return design

    # ------------------------------------------------------------------ #
    def evaluate(
        self,
        X_test: np.ndarray,
        y_test: np.ndarray,
        model_name: str = "MLP [4]*",
    ) -> ClassifierHardwareReport:
        """Full Table-I-style evaluation of the MLP baseline circuit."""
        block = self.hardware()
        timing = TimingAnalyzer(self.library).analyze(block, sequential=False)
        power = PowerAnalyzer(self.library).analyze(
            block, frequency_hz=timing.frequency_hz, cycles_per_classification=1
        )
        area = AreaAnalyzer(self.library).analyze(block)
        accuracy = accuracy_percent(y_test, self.predict(X_test))
        return ClassifierHardwareReport(
            dataset=self.dataset,
            model=model_name,
            accuracy_percent=accuracy,
            area_cm2=area.total_cm2,
            power_mw=power.total_mw,
            frequency_hz=timing.frequency_hz,
            latency_ms=power.latency_ms,
            energy_mj=power.energy_per_classification_mj,
            static_power_mw=power.static_mw,
            dynamic_power_mw=power.dynamic_mw,
            n_cells=block.n_cells(),
            cycles_per_classification=1,
            notes=f"topology={self.model.layer_sizes}",
        )

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Class labels predicted by the integer-exact MLP model."""
        return self.model.predict(X)
