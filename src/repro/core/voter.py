"""Voter circuits: sequential argmax (proposed) and combinational argmax.

The proposed voter "tracks the classifier (i.e., counter value) with the
highest score (i.e., weighted sum). Hence, our voter — essentially a
sequential argmax — requires only two registers (for score and classifier
id) and a single comparator, as finding the maximum score involves one
comparison per cycle between the current and stored scores."

The fully-parallel baselines need a combinational argmax (or pairwise vote)
over all classifier outputs at once, modelled by
:class:`CombinationalArgmaxVoter`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.netlist import HardwareBlock, parallel, series
from repro.hw.rtl.comparator import argmax_comparator_tree, magnitude_comparator
from repro.hw.rtl.registers import register_bank


@dataclass
class VoterState:
    """Architectural state of the sequential voter."""

    best_score: int = 0
    best_class: int = 0
    initialized: bool = False


class SequentialArgmaxVoter:
    """Two registers plus one comparator: the paper's sequential argmax."""

    def __init__(self, score_bits: int, index_bits: int) -> None:
        if score_bits < 1 or index_bits < 1:
            raise ValueError("voter register widths must be >= 1")
        self.score_bits = int(score_bits)
        self.index_bits = int(index_bits)
        comparator = magnitude_comparator(self.score_bits, signed=True, name="voter.comparator")
        score_reg = register_bank(self.score_bits, with_enable=True, name="voter.score_reg")
        index_reg = register_bank(self.index_bits, with_enable=True, name="voter.id_reg")
        registers = parallel("voter.registers", [score_reg, index_reg])
        self._block = series("voter", [comparator, registers])

    def hardware(self) -> HardwareBlock:
        """The voter as a priced hardware block."""
        return self._block

    # -- behavioural model -------------------------------------------------- #
    def reset(self) -> VoterState:
        """State after reset (registers cleared, nothing seen yet)."""
        return VoterState(best_score=0, best_class=0, initialized=False)

    def update(self, state: VoterState, score: int, classifier_id: int) -> VoterState:
        """One voting cycle: strict greater-than comparison against the best.

        The first score always loads the registers (the comparator output is
        ignored while the voter is uninitialised); afterwards the registers
        only load when the new score is strictly greater, so the earliest
        classifier wins ties — matching ``argmax`` tie-breaking.
        """
        if not state.initialized or score > state.best_score:
            return VoterState(best_score=int(score), best_class=int(classifier_id), initialized=True)
        return VoterState(
            best_score=state.best_score, best_class=state.best_class, initialized=True
        )

    def decide(self, scores) -> int:
        """Run the voter over a full score sequence; returns the winning id."""
        state = self.reset()
        for idx, score in enumerate(scores):
            state = self.update(state, int(score), idx)
        if not state.initialized:
            raise ValueError("voter received no scores")
        return state.best_class


class CombinationalArgmaxVoter:
    """Single-cycle argmax over all classifier scores (parallel baselines)."""

    def __init__(self, n_classifiers: int, score_bits: int, index_bits: int) -> None:
        if n_classifiers < 1:
            raise ValueError("need at least one classifier")
        self.n_classifiers = int(n_classifiers)
        self.score_bits = int(score_bits)
        self.index_bits = int(index_bits)
        self._block = argmax_comparator_tree(
            self.n_classifiers, self.score_bits, self.index_bits, name="voter.argmax_tree"
        )

    def hardware(self) -> HardwareBlock:
        """The combinational argmax tree as a priced hardware block."""
        return self._block

    def decide(self, scores) -> int:
        """Behavioural argmax with first-wins tie-breaking."""
        scores = list(scores)
        if len(scores) != self.n_classifiers:
            raise ValueError(
                f"expected {self.n_classifiers} scores, got {len(scores)}"
            )
        best_idx = 0
        for idx, score in enumerate(scores):
            if score > scores[best_idx]:
                best_idx = idx
        return best_idx
