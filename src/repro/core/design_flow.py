"""End-to-end design flow: train -> quantize -> generate -> estimate -> report.

One call of :func:`run_flow` reproduces one row of the paper's Table I:

* load the dataset (synthetic UCI stand-in), normalise inputs to [0, 1] and
  split 80/20 (the paper's setup);
* train the classifier (OvR linear SVM for the proposed design, OvO SVMs for
  the parallel baselines, a small MLP for the MLP baseline);
* post-training, quantize inputs/weights/biases — for the proposed design the
  weight precision is the lowest that retains accuracy (paper Sec. II);
* generate the bespoke circuit (sequential or parallel architecture);
* run timing / power / area analysis with the printed PDK and assemble a
  :class:`~repro.core.report.ClassifierHardwareReport`.

Results are cached per (dataset, model kind, configuration) because training
is by far the slowest step and the benchmarks revisit the same rows.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.parallel_mlp import ParallelMLPDesign
from repro.core.parallel_svm import ParallelSVMDesign
from repro.core.report import ClassifierHardwareReport
from repro.core.sequential_svm import SequentialSVMDesign
from repro.datasets import load_dataset
from repro.ml.mlp import MLPClassifier
from repro.ml.multiclass import OneVsOneClassifier, OneVsRestClassifier
from repro.ml.preprocessing import DatasetSplit, prepare_split
from repro.ml.quantization import (
    quantize_linear_classifier,
    quantize_mlp_classifier,
    search_lowest_precision,
)
from repro.ml.svm import LinearSVC

#: Model kinds understood by :func:`run_flow`, named after the Table I rows.
MODEL_KINDS = ("ours", "svm_parallel_exact", "svm_parallel_approx", "mlp_parallel")


@dataclass(frozen=True)
class FlowConfig:
    """All knobs of the reproduction flow (defaults follow the paper).

    The proposed design uses low-precision inputs, OvR and the
    lowest-retaining weight precision; the baselines follow their published
    descriptions (OvO bespoke parallel SVMs at higher precision for [2], the
    same with coefficient truncation for [3], a small bespoke MLP for [4]).
    """

    # Data preparation
    test_size: float = 0.2
    split_seed: int = 0
    dataset_seed: Optional[int] = None
    n_samples: Optional[int] = None

    # Proposed sequential SVM
    input_bits: int = 4
    max_weight_bits: int = 8
    min_weight_bits: int = 3
    accuracy_tolerance: float = 0.01
    svm_c: float = 1.0
    svm_max_iter: int = 60
    storage_style: str = "mux"

    # Parallel SVM baselines ([2] exact, [3] approximate)
    baseline_strategy: str = "ovo"
    baseline_input_bits: int = 5
    baseline_weight_bits: int = 7
    baseline_approx_drop_bits: int = 2

    # Parallel MLP baseline ([4])
    mlp_hidden_neurons: int = 6
    mlp_input_bits: int = 4
    mlp_weight_bits: int = 6
    mlp_max_epochs: int = 250
    mlp_learning_rate: float = 0.2

    def cache_key(self, dataset: str, kind: str) -> Tuple:
        """Hashable key identifying one flow invocation."""
        return (dataset, kind, tuple(sorted(self.__dict__.items())))


@dataclass
class FlowResult:
    """Everything produced by one flow run."""

    dataset: str
    kind: str
    report: ClassifierHardwareReport
    design: object
    split: DatasetSplit
    float_accuracy_percent: float
    weight_bits_used: int
    extra: Dict[str, float] = field(default_factory=dict)


class _BoundedCache:
    """An LRU-bounded mapping so long sessions cannot grow caches unboundedly.

    The flow caches used to be plain dicts: a service that sweeps many
    configurations (corner sweeps, precision scans, batch APIs) would retain
    every trained result forever.  This keeps the most recently used
    ``maxsize`` entries and evicts the oldest beyond that.
    """

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError("cache maxsize must be >= 1")
        self.maxsize = maxsize
        self._data: "OrderedDict[Tuple, object]" = OrderedDict()

    def __contains__(self, key: Tuple) -> bool:
        return key in self._data

    def __getitem__(self, key: Tuple):
        value = self._data[key]
        self._data.move_to_end(key)
        return value

    def __setitem__(self, key: Tuple, value: object) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def get(self, key: Tuple, default=None):
        if key in self._data:
            return self[key]
        return default

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[Tuple]:
        return iter(self._data)

    def clear(self) -> None:
        self._data.clear()


#: Upper bounds on the in-process caches (entries, LRU-evicted beyond this).
SPLIT_CACHE_MAX_ENTRIES = 64
FLOW_CACHE_MAX_ENTRIES = 256

_SPLIT_CACHE = _BoundedCache(SPLIT_CACHE_MAX_ENTRIES)
_FLOW_CACHE = _BoundedCache(FLOW_CACHE_MAX_ENTRIES)

#: Total number of model trainings this process has executed; the persistent
#: cache layer (:mod:`repro.core.flow_executor`) uses it to prove that warm
#: runs retrain nothing.
_TRAINING_RUNS = 0


def training_run_count() -> int:
    """How many times any flow in this process has trained a model."""
    return _TRAINING_RUNS


def _count_training_run() -> None:
    global _TRAINING_RUNS
    _TRAINING_RUNS += 1


def clear_flow_cache(disk=False) -> None:
    """Drop all cached flow results and dataset splits.

    ``disk`` also invalidates the persistent on-disk layer managed by
    :mod:`repro.core.flow_executor`, so retrained results can never be
    shadowed by stale persisted rows: pass ``True`` to purge the default
    cache directory (``~/.cache/repro`` / ``$REPRO_CACHE_DIR``, regardless
    of ``$REPRO_NO_CACHE``), or a
    :class:`~repro.core.flow_executor.FlowResultCache` to purge a specific
    one (e.g. a ``--cache-dir`` location).
    """
    _SPLIT_CACHE.clear()
    _FLOW_CACHE.clear()
    if disk:
        # Imported lazily: flow_executor builds on this module.
        from repro.core.flow_executor import FlowResultCache

        cache = disk if isinstance(disk, FlowResultCache) else FlowResultCache()
        cache.clear()


def cached_flow_result(
    dataset_name: str, kind: str, config: "FlowConfig"
) -> Optional[FlowResult]:
    """The in-process cached result for one (dataset, kind, config), if any."""
    return _FLOW_CACHE.get(config.cache_key(dataset_name, kind))


def warm_flow_cache(result: FlowResult, config: "FlowConfig") -> None:
    """Insert an externally produced result (disk cache, worker process)."""
    _FLOW_CACHE[config.cache_key(result.dataset, result.kind)] = result


def prepare_dataset(name: str, config: FlowConfig) -> DatasetSplit:
    """Load a dataset and run the paper's preprocessing pipeline (cached)."""
    key = (name, config.dataset_seed, config.n_samples, config.test_size, config.split_seed)
    if key not in _SPLIT_CACHE:
        dataset = load_dataset(name, seed=config.dataset_seed, n_samples=config.n_samples)
        _SPLIT_CACHE[key] = prepare_split(
            dataset.X,
            dataset.y,
            test_size=config.test_size,
            random_state=config.split_seed,
            feature_names=dataset.feature_names,
        )
    return _SPLIT_CACHE[key]


def quantize_split_inputs(split: DatasetSplit, input_bits: int) -> DatasetSplit:
    """Snap the normalised features of a split onto a low-precision grid.

    The paper trains its SVMs *with* low-precision inputs (Sec. II), i.e. the
    training data already lives on the quantized input grid the hardware will
    see, so the learned hyperplanes are matched to it.  The returned split
    shares the scaler/encoder of the original split.
    """
    from repro.ml.fixed_point import unsigned_input_format

    fmt = unsigned_input_format(input_bits)
    return replace(
        split,
        X_train=fmt.quantize(split.X_train),
        X_test=fmt.quantize(split.X_test),
    )


# --------------------------------------------------------------------------- #
# Individual flows
# --------------------------------------------------------------------------- #
def run_sequential_svm_flow(
    dataset_name: str, config: Optional[FlowConfig] = None
) -> FlowResult:
    """The proposed design: OvR SVM, lowest-precision quantization, sequential circuit."""
    config = config or FlowConfig()
    key = config.cache_key(dataset_name, "ours")
    if key in _FLOW_CACHE:
        return _FLOW_CACHE[key]

    raw_split = prepare_dataset(dataset_name, config)
    # The paper trains with low-precision inputs, so quantize the features
    # before training; the hyperplanes then match what the hardware sees.
    split = quantize_split_inputs(raw_split, config.input_bits)
    classifier = OneVsRestClassifier(
        LinearSVC(C=config.svm_c, max_iter=config.svm_max_iter, random_state=0)
    )
    _count_training_run()
    classifier.fit(split.X_train, split.y_train)
    float_accuracy = 100.0 * classifier.score(split.X_test, split.y_test)

    search = search_lowest_precision(
        classifier,
        split.X_test,
        split.y_test,
        input_bits=config.input_bits,
        max_weight_bits=config.max_weight_bits,
        min_weight_bits=config.min_weight_bits,
        accuracy_tolerance=config.accuracy_tolerance,
    )
    design = SequentialSVMDesign(
        search.quantized_model,
        storage_style=config.storage_style,
        dataset=dataset_name,
    )
    report = design.evaluate(split.X_test, split.y_test, model_name="Ours (seq. SVM)")
    result = FlowResult(
        dataset=dataset_name,
        kind="ours",
        report=report,
        design=design,
        split=split,
        float_accuracy_percent=float_accuracy,
        weight_bits_used=search.weight_bits,
        extra={"precision_search_steps": float(len(search.trace))},
    )
    _FLOW_CACHE[key] = result
    return result


def run_parallel_svm_flow(
    dataset_name: str,
    approximate: bool = False,
    config: Optional[FlowConfig] = None,
) -> FlowResult:
    """The parallel SVM baselines: [2] (exact) and [3] (approximate)."""
    config = config or FlowConfig()
    kind = "svm_parallel_approx" if approximate else "svm_parallel_exact"
    key = config.cache_key(dataset_name, kind)
    if key in _FLOW_CACHE:
        return _FLOW_CACHE[key]

    raw_split = prepare_dataset(dataset_name, config)
    split = quantize_split_inputs(raw_split, config.baseline_input_bits)
    base = LinearSVC(C=config.svm_c, max_iter=config.svm_max_iter, random_state=0)
    if config.baseline_strategy == "ovo":
        classifier = OneVsOneClassifier(base)
    else:
        classifier = OneVsRestClassifier(base)
    _count_training_run()
    classifier.fit(split.X_train, split.y_train)
    float_accuracy = 100.0 * classifier.score(split.X_test, split.y_test)

    quantized = quantize_linear_classifier(
        classifier,
        input_bits=config.baseline_input_bits,
        weight_bits=config.baseline_weight_bits,
    )
    design = ParallelSVMDesign(
        quantized,
        style="approximate" if approximate else "exact",
        approx_drop_bits=config.baseline_approx_drop_bits,
        dataset=dataset_name,
    )
    report = design.evaluate(split.X_test, split.y_test)
    result = FlowResult(
        dataset=dataset_name,
        kind=kind,
        report=report,
        design=design,
        split=split,
        float_accuracy_percent=float_accuracy,
        weight_bits_used=config.baseline_weight_bits
        - (config.baseline_approx_drop_bits if approximate else 0),
    )
    _FLOW_CACHE[key] = result
    return result


def run_parallel_mlp_flow(
    dataset_name: str, config: Optional[FlowConfig] = None
) -> FlowResult:
    """The parallel MLP baseline [4]."""
    config = config or FlowConfig()
    key = config.cache_key(dataset_name, "mlp_parallel")
    if key in _FLOW_CACHE:
        return _FLOW_CACHE[key]

    raw_split = prepare_dataset(dataset_name, config)
    split = quantize_split_inputs(raw_split, config.mlp_input_bits)
    classifier = MLPClassifier(
        hidden_layer_sizes=(config.mlp_hidden_neurons,),
        learning_rate=config.mlp_learning_rate,
        max_epochs=config.mlp_max_epochs,
        random_state=0,
    )
    _count_training_run()
    classifier.fit(split.X_train, split.y_train)
    float_accuracy = 100.0 * classifier.score(split.X_test, split.y_test)

    quantized = quantize_mlp_classifier(
        classifier,
        input_bits=config.mlp_input_bits,
        weight_bits=config.mlp_weight_bits,
    )
    design = ParallelMLPDesign(quantized, dataset=dataset_name)
    report = design.evaluate(split.X_test, split.y_test)
    result = FlowResult(
        dataset=dataset_name,
        kind="mlp_parallel",
        report=report,
        design=design,
        split=split,
        float_accuracy_percent=float_accuracy,
        weight_bits_used=config.mlp_weight_bits,
    )
    _FLOW_CACHE[key] = result
    return result


def run_flow(
    dataset_name: str, kind: str, config: Optional[FlowConfig] = None
) -> FlowResult:
    """Dispatch to the flow implementing one Table I row family."""
    if kind not in MODEL_KINDS:
        raise ValueError(f"unknown model kind {kind!r}; expected one of {MODEL_KINDS}")
    if kind == "ours":
        return run_sequential_svm_flow(dataset_name, config)
    if kind == "svm_parallel_exact":
        return run_parallel_svm_flow(dataset_name, approximate=False, config=config)
    if kind == "svm_parallel_approx":
        return run_parallel_svm_flow(dataset_name, approximate=True, config=config)
    return run_parallel_mlp_flow(dataset_name, config)


def run_dataset_comparison(
    dataset_name: str,
    kinds: Optional[List[str]] = None,
    config: Optional[FlowConfig] = None,
    jobs: Optional[int] = None,
    cache=None,
) -> List[FlowResult]:
    """Run every requested model kind on one dataset (one Table I block).

    ``jobs`` shards the (dataset, kind) grid across worker processes and
    ``cache`` selects the persistent result cache; see
    :func:`repro.core.flow_executor.execute_flow_grid` for both knobs.
    """
    kinds = list(kinds) if kinds is not None else list(MODEL_KINDS)
    from repro.core.flow_executor import execute_flow_grid

    results = execute_flow_grid(
        [(dataset_name, kind) for kind in kinds],
        config=config,
        jobs=jobs,
        cache=cache,
    )
    return [results[(dataset_name, kind)] for kind in kinds]


def fast_config(n_samples: int = 400, svm_max_iter: int = 25, mlp_max_epochs: int = 40) -> FlowConfig:
    """A reduced configuration for quick tests (smaller datasets, fewer iterations).

    The hardware structure (and therefore the qualitative Table I shape) is
    unchanged; only training cost and statistical precision of the accuracy
    estimates are reduced.
    """
    return FlowConfig(
        n_samples=n_samples,
        svm_max_iter=svm_max_iter,
        mlp_max_epochs=mlp_max_epochs,
    )
