"""The paper's primary contribution and the baseline architectures.

* :class:`SequentialSVMDesign` — the proposed bespoke sequential SVM circuit
  (control counter + MUX storage + folded compute engine + sequential voter).
* :class:`ParallelSVMDesign` — the fully-parallel bespoke SVM baselines
  ([2] exact, [3] approximate).
* :class:`ParallelMLPDesign` — the fully-parallel bespoke MLP baseline [4].
* :mod:`repro.core.design_flow` — the end-to-end train/quantize/generate/
  estimate flow producing Table-I-style reports.
"""

from repro.core.compute_engine import FoldedComputeEngine
from repro.core.control import SequentialController
from repro.core.design_flow import (
    FlowConfig,
    FlowResult,
    MODEL_KINDS,
    clear_flow_cache,
    fast_config,
    prepare_dataset,
    run_dataset_comparison,
    run_flow,
    run_parallel_mlp_flow,
    run_parallel_svm_flow,
    run_sequential_svm_flow,
    training_run_count,
)
from repro.core.flow_executor import (
    FlowResultCache,
    code_fingerprint,
    default_cache,
    execute_flow_grid,
    run_flow_cached,
)
from repro.core.parallel_mlp import ParallelMLPDesign
from repro.core.parallel_svm import ParallelSVMDesign, truncate_model
from repro.core.report import ClassifierHardwareReport
from repro.core.sequential_svm import SequentialSVMDesign
from repro.core.storage import CrossbarRomStorage, MuxStorage
from repro.core.voter import CombinationalArgmaxVoter, SequentialArgmaxVoter

__all__ = [
    "FoldedComputeEngine",
    "SequentialController",
    "FlowConfig",
    "FlowResult",
    "MODEL_KINDS",
    "clear_flow_cache",
    "fast_config",
    "prepare_dataset",
    "run_dataset_comparison",
    "run_flow",
    "run_parallel_mlp_flow",
    "run_parallel_svm_flow",
    "run_sequential_svm_flow",
    "training_run_count",
    "FlowResultCache",
    "code_fingerprint",
    "default_cache",
    "execute_flow_grid",
    "run_flow_cached",
    "ParallelMLPDesign",
    "ParallelSVMDesign",
    "truncate_model",
    "ClassifierHardwareReport",
    "SequentialSVMDesign",
    "CrossbarRomStorage",
    "MuxStorage",
    "CombinationalArgmaxVoter",
    "SequentialArgmaxVoter",
]
