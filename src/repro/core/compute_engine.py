"""The folded compute engine of the sequential SVM.

"The entire SVM computation is folded over one compute engine, which
computes the weighted sum for each support vector fetched from the MUX.  Our
engine instantiates m multipliers and a multi-operand adder, thus computing
one classifier per cycle and significantly reducing the hardware resources
compared to fully parallel architectures, where dedicated hardware per
coefficient is required."
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.hw.activity import SEQUENTIAL_OPERAND_REUSE_FACTOR, scale_toggles
from repro.hw.netlist import HardwareBlock
from repro.hw.synthesis import synthesize_folded_mac


class FoldedComputeEngine:
    """``m`` array multipliers plus a multi-operand adder, shared by all classifiers.

    Parameters
    ----------
    n_features:
        Number of input features ``m`` (one multiplier each).
    input_bits:
        Precision of the (unsigned) input activations.
    weight_bits:
        Precision of the (signed) coefficients arriving from storage.
    score_bits:
        Width of the signed score delivered to the voter; must be large
        enough to hold the worst-case weighted sum plus bias.
    """

    def __init__(
        self, n_features: int, input_bits: int, weight_bits: int, score_bits: int
    ) -> None:
        if n_features < 1:
            raise ValueError("need at least one feature")
        if input_bits < 1 or weight_bits < 2 or score_bits < 2:
            raise ValueError("invalid precision configuration")
        self.n_features = int(n_features)
        self.input_bits = int(input_bits)
        self.weight_bits = int(weight_bits)
        self.score_bits = int(score_bits)
        self._block, self.output_bits = synthesize_folded_mac(
            self.n_features,
            self.input_bits,
            self.weight_bits,
            self.score_bits,
            name="compute_engine",
        )
        # Folded operation keeps the feature operands constant for the whole
        # classification and only the coefficients change (once per cycle, at
        # the register boundary), so the engine switches far less than a
        # generic datapath of the same size.
        self._block.toggles = scale_toggles(
            self._block.toggles, SEQUENTIAL_OPERAND_REUSE_FACTOR
        )

    @property
    def n_multipliers(self) -> int:
        """Number of hardware multipliers (one per feature, reused every cycle)."""
        return self.n_features

    def hardware(self) -> HardwareBlock:
        """The compute engine as a priced hardware block."""
        return self._block

    # -- behavioural model -------------------------------------------------- #
    def compute(
        self,
        input_codes: Sequence[int],
        weight_codes: Sequence[int],
        bias_code: int,
    ) -> int:
        """One cycle of the engine: the weighted sum of the selected support vector.

        All operands are integer codes; the result is the exact integer score
        the voter compares, with an overflow check against ``score_bits``.
        """
        x = np.asarray(input_codes, dtype=np.int64)
        w = np.asarray(weight_codes, dtype=np.int64)
        if x.shape != (self.n_features,) or w.shape != (self.n_features,):
            raise ValueError(
                f"engine expects {self.n_features} inputs and weights, "
                f"got {x.shape} and {w.shape}"
            )
        score = int(w @ x) + int(bias_code)
        limit = 1 << (self.score_bits - 1)
        if not -limit <= score < limit:
            raise OverflowError(
                f"score {score} exceeds the {self.score_bits}-bit accumulator"
            )
        return score

    def compute_all(
        self,
        input_codes: Sequence[int],
        weight_table: np.ndarray,
        bias_codes: Sequence[int],
    ) -> np.ndarray:
        """Scores of every classifier for one input (the full multi-cycle pass)."""
        weight_table = np.asarray(weight_table, dtype=np.int64)
        bias_codes = np.asarray(bias_codes, dtype=np.int64)
        return np.array(
            [
                self.compute(input_codes, weight_table[k], int(bias_codes[k]))
                for k in range(weight_table.shape[0])
            ],
            dtype=np.int64,
        )
