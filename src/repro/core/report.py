"""Hardware evaluation report for one classifier design.

The :class:`ClassifierHardwareReport` carries exactly the columns of the
paper's Table I — accuracy (%), area (cm^2), power (mW), frequency (Hz),
latency (ms) and energy (mJ) — plus the underlying breakdowns (static vs
dynamic power, cell counts, per-component areas) used by the ablation
studies and the documentation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class ClassifierHardwareReport:
    """Table-I-style evaluation record of one classifier circuit."""

    dataset: str
    model: str
    accuracy_percent: float
    area_cm2: float
    power_mw: float
    frequency_hz: float
    latency_ms: float
    energy_mj: float
    static_power_mw: float = 0.0
    dynamic_power_mw: float = 0.0
    n_cells: int = 0
    cycles_per_classification: int = 1
    area_breakdown_cm2: Dict[str, float] = field(default_factory=dict)
    notes: str = ""

    def __post_init__(self) -> None:
        if self.accuracy_percent < 0 or self.accuracy_percent > 100:
            raise ValueError("accuracy must be a percentage in [0, 100]")
        for attr in ("area_cm2", "power_mw", "frequency_hz", "latency_ms", "energy_mj"):
            if getattr(self, attr) < 0:
                raise ValueError(f"{attr} must be non-negative")

    # -- derived quantities ------------------------------------------------ #
    @property
    def power_density_mw_per_cm2(self) -> float:
        """Average power per unit printed area."""
        if self.area_cm2 == 0:
            return 0.0
        return self.power_mw / self.area_cm2

    @property
    def energy_delay_product(self) -> float:
        """Energy-delay product (mJ * ms), a common efficiency figure of merit."""
        return self.energy_mj * self.latency_ms

    def within_power_budget(self, budget_mw: float) -> bool:
        """Whether the design can be powered by a source of ``budget_mw``."""
        return self.power_mw <= budget_mw

    # -- formatting --------------------------------------------------------- #
    def as_row(self) -> Dict[str, float]:
        """The Table I columns as a plain dictionary."""
        return {
            "dataset": self.dataset,
            "model": self.model,
            "accuracy_percent": round(self.accuracy_percent, 2),
            "area_cm2": round(self.area_cm2, 2),
            "power_mw": round(self.power_mw, 2),
            "frequency_hz": round(self.frequency_hz, 1),
            "latency_ms": round(self.latency_ms, 1),
            "energy_mj": round(self.energy_mj, 3),
        }

    def __str__(self) -> str:  # pragma: no cover - formatting helper
        return (
            f"{self.dataset:12s} {self.model:12s} "
            f"acc {self.accuracy_percent:5.1f}%  area {self.area_cm2:6.2f} cm^2  "
            f"power {self.power_mw:6.2f} mW  freq {self.frequency_hz:5.1f} Hz  "
            f"latency {self.latency_ms:6.1f} ms  energy {self.energy_mj:6.3f} mJ"
        )
