"""The paper's primary contribution: the bespoke sequential SVM circuit.

:class:`SequentialSVMDesign` assembles the four blocks of Fig. 1 — control,
storage, compute engine and voter — around a quantized OvR linear SVM,
prices the resulting circuit with the printed PDK, simulates it cycle by
cycle, and exports behavioural Verilog.

Architecture recap (one classification = ``n`` cycles, ``n`` = #classes):

* the control counter selects support vector ``k`` (cycle ``k``);
* bespoke MUX storage delivers the hardwired weights and bias of that
  support vector;
* the folded compute engine (``m`` multipliers + multi-operand adder)
  produces the integer score;
* the sequential argmax voter keeps the best (score, classifier id) pair;
  after the final cycle the id register holds the prediction.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.compute_engine import FoldedComputeEngine
from repro.core.control import SequentialController
from repro.core.report import ClassifierHardwareReport
from repro.core.storage import CrossbarRomStorage, MuxStorage, storage_bits_for_model
from repro.core.voter import SequentialArgmaxVoter
from repro.hw.area import AreaAnalyzer
from repro.hw.cells import CellLibrary
from repro.hw.netlist import HardwareBlock, parallel
from repro.hw.pdk import EGFET_PDK
from repro.hw.power import PowerAnalyzer
from repro.hw.simulate import SequentialDatapathSimulator, SimulationResult
from repro.hw.synthesis import estimate_classifier_score_bound
from repro.hw.timing import TimingAnalyzer
from repro.hw.verilog import sequential_svm_to_verilog
from repro.ml.fixed_point import required_bits_for_integer
from repro.ml.metrics import accuracy_percent
from repro.ml.quantization import QuantizedLinearModel


class SequentialSVMDesign:
    """Bespoke sequential SVM circuit generated from a quantized OvR model.

    Parameters
    ----------
    model:
        The quantized linear model whose coefficients get hardwired.  The
        paper's architecture pairs naturally with OvR (``n`` classifiers =
        ``n`` cycles); OvO models are accepted for ablation studies (the
        voter then only identifies the highest-scoring *classifier*, so
        predictions use the model's pairwise vote instead of the hardware id).
    storage_style:
        ``"mux"`` (the proposed bespoke MUX storage, default) or
        ``"crossbar"`` (the rejected ROM alternative, kept for the ablation).
    library:
        Printed cell library used for pricing; defaults to the EGFET stand-in.
    """

    def __init__(
        self,
        model: QuantizedLinearModel,
        storage_style: str = "mux",
        library: Optional[CellLibrary] = None,
        dataset: str = "",
    ) -> None:
        if storage_style not in ("mux", "crossbar"):
            raise ValueError(f"unknown storage style {storage_style!r}")
        self.model = model
        self.storage_style = storage_style
        self.library = library or EGFET_PDK
        self.dataset = dataset

        # -- derived widths ------------------------------------------------- #
        score_bound = estimate_classifier_score_bound(
            model.weight_codes, model.bias_codes, model.input_format.max_code
        )
        self.score_bits = max(required_bits_for_integer(score_bound, signed=True), 2)

        # -- architectural components --------------------------------------- #
        self.controller = SequentialController(model.n_classifiers)
        self.engine = FoldedComputeEngine(
            n_features=model.n_features,
            input_bits=model.input_format.total_bits,
            weight_bits=model.weight_format.total_bits,
            score_bits=self.score_bits,
        )
        bits_per_value = storage_bits_for_model(
            model.weight_format.total_bits, model.n_features, self.score_bits
        )
        table = model.stored_coefficients()
        if storage_style == "mux":
            self.storage = MuxStorage(table, bits_per_value)
        else:
            self.storage = CrossbarRomStorage(table, bits_per_value)
        self.voter = SequentialArgmaxVoter(
            score_bits=self.score_bits, index_bits=self.controller.counter_bits
        )
        self.simulator = SequentialDatapathSimulator(
            model.weight_codes, model.bias_codes
        )
        # Structural caches: the circuit is immutable once constructed, so the
        # component blocks, the composed design and the explicit gate-level
        # top are built at most once.
        self._component_blocks: Optional[dict] = None
        self._hardware_block: Optional[HardwareBlock] = None
        self._gate_netlist: Optional[tuple] = None

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #
    @property
    def n_classifiers(self) -> int:
        return self.model.n_classifiers

    @property
    def n_features(self) -> int:
        return self.model.n_features

    @property
    def cycles_per_classification(self) -> int:
        """One cycle per stored support vector."""
        return self.controller.cycles_per_classification

    def component_hardware(self) -> dict:
        """The four component blocks, built once and cached.

        Keys match the Table I area-breakdown labels.  The blocks are shared
        with :meth:`hardware` (composition never mutates its children), so a
        full evaluation builds each component exactly once.
        """
        if self._component_blocks is None:
            self._component_blocks = {
                "storage": self.storage.hardware(),
                "compute_engine": self.engine.hardware(),
                "voter": self.voter.hardware(),
                "control": self.controller.hardware(),
            }
        return self._component_blocks

    def hardware(self) -> HardwareBlock:
        """The complete circuit as one priced hardware block (cached).

        The four components operate concurrently within a cycle; the cycle's
        critical path runs storage-select -> compute engine -> voter
        comparator, which the composition below reflects (control sits in
        parallel, it only feeds the select lines).
        """
        from repro.hw.netlist import series

        if self._hardware_block is None:
            components = self.component_hardware()
            datapath = series(
                "datapath",
                [components["storage"], components["compute_engine"], components["voter"]],
            )
            self._hardware_block = parallel(
                f"sequential_svm[{self.dataset or 'design'}]",
                [datapath, components["control"]],
            )
        return self._hardware_block

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def evaluate(
        self,
        X_test: np.ndarray,
        y_test: np.ndarray,
        model_name: str = "Ours (seq. SVM)",
    ) -> ClassifierHardwareReport:
        """Full Table-I-style evaluation: accuracy plus hardware metrics."""
        block = self.hardware()
        timing = TimingAnalyzer(self.library).analyze(block, sequential=True)
        power = PowerAnalyzer(self.library).analyze(
            block,
            frequency_hz=timing.frequency_hz,
            cycles_per_classification=self.cycles_per_classification,
        )
        area = AreaAnalyzer(self.library).analyze(block)
        accuracy = accuracy_percent(y_test, self.predict(X_test))
        # Reuse the cached component blocks from the single hardware() build
        # instead of regenerating every component for the area breakdown.
        breakdown = {
            name: component.area_cm2(self.library)
            for name, component in self.component_hardware().items()
        }
        return ClassifierHardwareReport(
            dataset=self.dataset,
            model=model_name,
            accuracy_percent=accuracy,
            area_cm2=area.total_cm2,
            power_mw=power.total_mw,
            frequency_hz=timing.frequency_hz,
            latency_ms=power.latency_ms,
            energy_mj=power.energy_per_classification_mj,
            static_power_mw=power.static_mw,
            dynamic_power_mw=power.dynamic_mw,
            n_cells=block.n_cells(),
            cycles_per_classification=self.cycles_per_classification,
            area_breakdown_cm2=breakdown,
            notes=f"storage={self.storage_style}, OvR={self.model.strategy == 'ovr'}",
        )

    def gate_netlist(self):
        """The complete clocked circuit as an explicit gate-level netlist.

        Built once and cached: counter + MUX storage + shared MAC + voter
        composed from the :mod:`repro.hw.rtl` generators with this model's
        coefficients hardwired
        (:func:`~repro.hw.rtl.svm_top.build_sequential_svm_netlist`).
        Returns ``(netlist, ports)``; simulate it with
        :func:`repro.perf.seqsim.simulate_sequential_batch` (the behavioural
        :class:`~repro.hw.simulate.SequentialDatapathSimulator` is the
        oracle it is asserted bit-exact against, see
        :meth:`verify_gate_level`).
        """
        from repro.hw.rtl.svm_top import build_sequential_svm_netlist

        if self._gate_netlist is None:
            self._gate_netlist = build_sequential_svm_netlist(
                self.model.weight_codes,
                self.model.bias_codes,
                input_bits=self.model.input_format.total_bits,
                name=f"sequential_svm_{self.dataset or 'design'}".replace("-", "_"),
            )
        return self._gate_netlist

    # ------------------------------------------------------------------ #
    # Functional behaviour
    # ------------------------------------------------------------------ #
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Class labels predicted by the integer-exact model (matches hardware)."""
        return self.model.predict(X)

    def simulate_sample(self, x: np.ndarray) -> SimulationResult:
        """Cycle-accurate simulation of one (real-valued) input sample."""
        codes = self.model.quantize_inputs(np.asarray(x).reshape(1, -1))[0]
        return self.simulator.run(codes)

    def simulate_batch(self, X: np.ndarray) -> np.ndarray:
        """Hardware-predicted class ids for a batch of real-valued inputs."""
        codes = self.model.quantize_inputs(np.asarray(X))
        return self.simulator.run_batch(codes)

    def verify_against_model(self, X: np.ndarray) -> bool:
        """Check that the cycle-accurate simulation matches the integer model.

        Only meaningful for OvR models (the hardware voter implements the OvR
        argmax).  Returns True when every prediction matches bit-exactly.
        """
        if self.model.strategy != "ovr":
            raise ValueError("hardware/model equivalence is defined for OvR models")
        hw_ids = self.simulate_batch(X)
        sw_ids = self.model.predict_ids(X)
        return bool(np.array_equal(hw_ids, sw_ids))

    def simulate_gate_level(
        self, X: np.ndarray, opt_level: int = 0, engine: str = "auto"
    ) -> np.ndarray:
        """Class ids predicted by clocking the explicit gate-level netlist.

        Every sample's quantized codes are held on the input pins for
        ``n_classifiers`` cycles through the bit-parallel sequential engine;
        the prediction is the best-class register's load value during the
        final cycle.  ``opt_level > 0`` simulates the pass-optimized
        combinational regions instead of the raw ones; ``engine`` selects
        the execution backend for the per-cycle cone
        (see :mod:`repro.perf.engines`).
        """
        from repro.perf.bitsim import words_to_ints
        from repro.perf.seqsim import simulate_sequential_batch

        netlist, ports = self.gate_netlist()
        codes = self.model.quantize_inputs(np.asarray(X))
        if codes.shape[0] == 0:
            return np.zeros(0, dtype=np.int64)
        trace = simulate_sequential_batch(
            netlist,
            ports.input_matrix(codes),
            cycles=ports.n_classifiers,
            library=self.library,
            opt_level=opt_level,
            engine=engine,
        )
        return words_to_ints(trace[-1], ports.pred_lanes())

    def verify_gate_level(
        self, X: np.ndarray, opt_level: int = 0, engine: str = "auto"
    ) -> bool:
        """Assert the gate-level netlist bit-exact against the cycle oracle.

        Checks every cycle of every sample: score, best score, best class
        and comparator-fired must match the behavioural
        :class:`~repro.hw.simulate.SequentialDatapathSimulator` trace.
        """
        from repro.hw.rtl.svm_top import verify_sequential_svm_netlist

        netlist, ports = self.gate_netlist()
        codes = self.model.quantize_inputs(np.asarray(X))
        return verify_sequential_svm_netlist(
            netlist,
            ports,
            codes,
            oracle=self.simulator,
            library=self.library,
            opt_level=opt_level,
            engine=engine,
        )

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    def to_verilog(self, module_name: Optional[str] = None) -> str:
        """Behavioural Verilog of this design with hardwired coefficients."""
        name = module_name or f"sequential_svm_{self.dataset or 'design'}"
        name = name.replace("-", "_").replace(" ", "_").replace(".", "_")
        return sequential_svm_to_verilog(
            self.model.weight_codes,
            self.model.bias_codes,
            input_bits=self.model.input_format.total_bits,
            weight_bits=self.model.weight_format.total_bits,
            score_bits=self.score_bits,
            module_name=name,
        )

    def summary(self) -> str:
        """Readable architecture summary (used by the quickstart example)."""
        block = self.hardware()
        lines = [
            f"Sequential SVM design ({self.dataset or 'unnamed dataset'})",
            f"  classifiers (support vectors) : {self.n_classifiers}",
            f"  features / multipliers        : {self.n_features}",
            f"  input precision               : {self.model.input_format.describe()}",
            f"  weight precision              : {self.model.weight_format.describe()}",
            f"  score width                   : {self.score_bits} bits",
            f"  storage                       : {self.storage_style}, "
            f"{self.storage.total_bits} hardwired bits",
            f"  cycles per classification     : {self.cycles_per_classification}",
            f"  total cells                   : {block.n_cells()}",
        ]
        return "\n".join(lines)
