"""Synthetic stand-ins for the five UCI datasets evaluated in the paper.

Each function below generates a dataset with the same *shape* as the real
UCI dataset (feature count, class count, approximate sample count, class
imbalance and label structure), with the separability tuned so that a linear
OvR SVM reaches a test accuracy in the neighbourhood of the accuracy the
paper reports for its own design.  The real datasets are:

=============  ==========  =========  ========  =======================================
Dataset        # features  # classes  # samples  Character
=============  ==========  =========  ========  =======================================
Cardio         21          3          2126       Cardiotocography (NSP label), imbalanced
Dermatology    34          6          366        Clinical + histopathological, separable
PenDigits      16          10         10992      Pen-based digit recognition, balanced
RedWine        11          6          1599       Ordinal quality scores, hard, imbalanced
WhiteWine      11          7          4898       Ordinal quality scores, hard, imbalanced
=============  ==========  =========  ========  =======================================

The paper's own (sequential SVM) accuracies on these datasets are 93.4 %,
98.6 %, 93.1 %, 64 % and 56 % respectively; the separability values below are
calibrated so the reproduction lands in the same regime.
"""

from __future__ import annotations

from repro.datasets.synthetic import SyntheticDataset, SyntheticSpec, generate_dataset

#: Default seed used by every generator so the whole evaluation is reproducible.
DEFAULT_SEED = 2025


def make_cardio(seed: int = DEFAULT_SEED, n_samples: int = 2126) -> SyntheticDataset:
    """Cardiotocography stand-in: 21 features, 3 classes (N/S/P), imbalanced.

    The real dataset is dominated by the "Normal" class (~78 %) with
    "Suspect" (~14 %) and "Pathologic" (~8 %) minorities, and its features are
    correlated FHR/UC sensor statistics.
    """
    spec = SyntheticSpec(
        n_samples=n_samples,
        n_features=21,
        n_classes=3,
        n_informative=12,
        class_priors=(0.78, 0.14, 0.08),
        separability=3.1,
        noise_features=4,
        feature_correlation=0.25,
        label_noise=0.02,
        seed=seed,
    )
    names = [
        "LB", "AC", "FM", "UC", "DL", "DS", "DP", "ASTV", "MSTV", "ALTV",
        "MLTV", "Width", "Min", "Max", "Nmax", "Nzeros", "Mode", "Mean",
        "Median", "Variance", "Tendency",
    ]
    return generate_dataset(
        "cardio",
        spec,
        feature_names=names,
        description="Synthetic cardiotocography-like dataset (21 features, 3 classes).",
    )


def make_dermatology(seed: int = DEFAULT_SEED, n_samples: int = 366) -> SyntheticDataset:
    """Dermatology stand-in: 34 features, 6 classes, highly separable.

    The real erythemato-squamous-disease dataset is small, moderately
    imbalanced and almost linearly separable (papers report 97-99 %).
    """
    spec = SyntheticSpec(
        n_samples=n_samples,
        n_features=34,
        n_classes=6,
        n_informative=20,
        class_priors=(0.31, 0.17, 0.20, 0.13, 0.14, 0.05),
        separability=5.2,
        noise_features=6,
        feature_correlation=0.15,
        label_noise=0.0,
        seed=seed + 1,
    )
    names = [f"attr{i+1}" for i in range(34)]
    return generate_dataset(
        "dermatology",
        spec,
        feature_names=names,
        description="Synthetic dermatology-like dataset (34 features, 6 classes).",
    )


def make_pendigits(seed: int = DEFAULT_SEED, n_samples: int = 3500) -> SyntheticDataset:
    """PenDigits stand-in: 16 features, 10 classes, balanced.

    The real dataset has ~11k samples of resampled pen trajectories
    (8 (x, y) points).  We default to a smaller sample count to keep the
    test suite fast; the structural hardware cost only depends on the
    16-feature / 10-class shape.
    """
    spec = SyntheticSpec(
        n_samples=n_samples,
        n_features=16,
        n_classes=10,
        n_informative=12,
        class_priors=None,
        separability=3.9,
        noise_features=0,
        feature_correlation=0.10,
        label_noise=0.01,
        seed=seed + 2,
    )
    names = [f"{axis}{i}" for i in range(8) for axis in ("x", "y")]
    return generate_dataset(
        "pendigits",
        spec,
        feature_names=names,
        description="Synthetic pen-digits-like dataset (16 features, 10 classes).",
    )


def make_redwine(seed: int = DEFAULT_SEED, n_samples: int = 1599) -> SyntheticDataset:
    """RedWine stand-in: 11 features, 6 ordinal quality classes, hard.

    Wine-quality scores are ordinal, heavily concentrated on the middle
    grades, and only weakly predictable from physicochemical measurements —
    the paper (and the baselines) report 52-64 % accuracy.
    """
    spec = SyntheticSpec(
        n_samples=n_samples,
        n_features=11,
        n_classes=6,
        n_informative=8,
        class_priors=(0.006, 0.033, 0.426, 0.399, 0.124, 0.012),
        separability=1.15,
        ordinal=True,
        noise_features=2,
        feature_correlation=0.20,
        label_noise=0.08,
        seed=seed + 3,
    )
    names = [
        "fixed_acidity", "volatile_acidity", "citric_acid", "residual_sugar",
        "chlorides", "free_sulfur_dioxide", "total_sulfur_dioxide", "density",
        "pH", "sulphates", "alcohol",
    ]
    return generate_dataset(
        "redwine",
        spec,
        feature_names=names,
        description="Synthetic red-wine-quality-like dataset (11 features, 6 classes).",
    )


def make_whitewine(seed: int = DEFAULT_SEED, n_samples: int = 4898) -> SyntheticDataset:
    """WhiteWine stand-in: 11 features, 7 ordinal quality classes, hard."""
    spec = SyntheticSpec(
        n_samples=n_samples,
        n_features=11,
        n_classes=7,
        n_informative=8,
        class_priors=(0.004, 0.033, 0.297, 0.449, 0.180, 0.036, 0.001),
        separability=1.05,
        ordinal=True,
        noise_features=2,
        feature_correlation=0.20,
        label_noise=0.10,
        seed=seed + 4,
    )
    names = [
        "fixed_acidity", "volatile_acidity", "citric_acid", "residual_sugar",
        "chlorides", "free_sulfur_dioxide", "total_sulfur_dioxide", "density",
        "pH", "sulphates", "alcohol",
    ]
    return generate_dataset(
        "whitewine",
        spec,
        feature_names=names,
        description="Synthetic white-wine-quality-like dataset (11 features, 7 classes).",
    )
