"""Synthetic stand-ins for the UCI datasets the paper evaluates on.

No network access is available, so the five UCI datasets (Cardiotocography,
Dermatology, PenDigits, RedWine, WhiteWine) are replaced by deterministic
synthetic datasets that reproduce their shape (feature count, class count,
class imbalance, ordinal structure) and approximate difficulty.  See
``DESIGN.md`` for the substitution rationale.
"""

from repro.datasets.synthetic import (
    SyntheticDataset,
    SyntheticSpec,
    generate_dataset,
    make_classification,
)
from repro.datasets.registry import (
    available_datasets,
    canonical_name,
    clear_cache,
    dataset_summary,
    load_dataset,
    register_dataset,
)
from repro.datasets.uci import (
    make_cardio,
    make_dermatology,
    make_pendigits,
    make_redwine,
    make_whitewine,
)

__all__ = [
    "SyntheticDataset",
    "SyntheticSpec",
    "generate_dataset",
    "make_classification",
    "available_datasets",
    "canonical_name",
    "clear_cache",
    "dataset_summary",
    "load_dataset",
    "register_dataset",
    "make_cardio",
    "make_dermatology",
    "make_pendigits",
    "make_redwine",
    "make_whitewine",
]
