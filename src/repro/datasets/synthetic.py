"""Synthetic classification-dataset generator.

The paper evaluates on five UCI datasets which we cannot download in this
offline environment.  The hardware cost of a bespoke printed classifier is
fully determined by its *structure* — number of input features, number of
classes, coefficient precision and the trained coefficient values — while
its accuracy depends on how separable the data is.  This generator therefore
reproduces the relevant statistics of each UCI dataset:

* feature count, class count and sample count,
* class imbalance (given as per-class prior probabilities),
* feature correlation (a random low-rank mixing of informative directions),
* a tunable *separability* that controls how far apart class centroids sit
  relative to the within-class noise, calibrated per dataset so that a linear
  SVM's test accuracy lands near the accuracy reported in the paper,
* optional ordinal label structure (for the wine-quality datasets, whose
  classes are ordered scores and hence heavily overlapping).

Everything is deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np


@dataclass
class SyntheticSpec:
    """Parameters of a synthetic classification problem.

    Attributes
    ----------
    n_samples, n_features, n_classes:
        Overall shape of the dataset.
    n_informative:
        Number of latent informative directions (defaults to all features).
    class_priors:
        Relative class frequencies (normalised internally).  ``None`` means
        balanced classes.
    separability:
        Distance between class centroids in units of within-class standard
        deviation.  Around 1.0 gives heavily overlapping classes (~50-65 %
        linear accuracy for several classes); 3-4 gives nearly separable data.
    ordinal:
        If True, class centroids are placed along a single latent direction
        in label order, which makes adjacent classes the main confusions —
        the structure of the wine-quality score datasets.
    noise_features:
        Number of pure-noise features appended (uninformative).
    feature_correlation:
        In ``[0, 1)``; blends each feature with a shared common factor to
        induce correlated measurements (e.g. cardiotocography sensor values).
    label_noise:
        Fraction of training labels randomly reassigned, modelling the
        annotation noise present in real UCI data.
    seed:
        Generator seed; the same spec + seed always produces the same data.
    """

    n_samples: int
    n_features: int
    n_classes: int
    n_informative: Optional[int] = None
    class_priors: Optional[Sequence[float]] = None
    separability: float = 2.0
    ordinal: bool = False
    noise_features: int = 0
    feature_correlation: float = 0.0
    label_noise: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_samples < self.n_classes:
            raise ValueError("need at least one sample per class")
        if self.n_features < 1 or self.n_classes < 2:
            raise ValueError("invalid dataset shape")
        if self.n_informative is None:
            self.n_informative = max(1, self.n_features - self.noise_features)
        if self.n_informative + self.noise_features > self.n_features:
            raise ValueError("informative + noise features exceed feature count")
        if not 0.0 <= self.feature_correlation < 1.0:
            raise ValueError("feature_correlation must be in [0, 1)")
        if not 0.0 <= self.label_noise < 1.0:
            raise ValueError("label_noise must be in [0, 1)")
        if self.separability <= 0.0:
            raise ValueError("separability must be positive")
        if self.class_priors is not None:
            priors = np.asarray(self.class_priors, dtype=float)
            if priors.shape[0] != self.n_classes:
                raise ValueError("class_priors length must equal n_classes")
            if np.any(priors <= 0):
                raise ValueError("class priors must be positive")


def _sample_labels(spec: SyntheticSpec, rng: np.random.Generator) -> np.ndarray:
    """Draw labels honouring the class priors, with every class present."""
    if spec.class_priors is None:
        priors = np.full(spec.n_classes, 1.0 / spec.n_classes)
    else:
        priors = np.asarray(spec.class_priors, dtype=float)
        priors = priors / priors.sum()
    labels = rng.choice(spec.n_classes, size=spec.n_samples, p=priors)
    # Guarantee every class appears at least twice so stratified splitting and
    # OvR training always have positive samples.
    for cls in range(spec.n_classes):
        count = int(np.sum(labels == cls))
        if count < 2:
            replace_idx = rng.choice(spec.n_samples, size=2 - count, replace=False)
            labels[replace_idx] = cls
    return labels


def _class_centroids(spec: SyntheticSpec, rng: np.random.Generator) -> np.ndarray:
    """Centroids in the informative latent space, scaled by separability."""
    k = spec.n_informative
    if spec.ordinal:
        # Ordinal classes: centroids advance along one latent axis in label
        # order, with small random offsets in the remaining directions.
        direction = rng.normal(size=k)
        direction /= np.linalg.norm(direction)
        offsets = rng.normal(scale=0.35, size=(spec.n_classes, k))
        steps = np.arange(spec.n_classes, dtype=float).reshape(-1, 1)
        centroids = steps * direction * spec.separability + offsets
    else:
        centroids = rng.normal(size=(spec.n_classes, k))
        norms = np.linalg.norm(centroids, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        centroids = centroids / norms * spec.separability
    return centroids


def make_classification(spec: SyntheticSpec) -> Tuple[np.ndarray, np.ndarray]:
    """Generate ``(X, y)`` according to ``spec`` (deterministic in the seed)."""
    rng = np.random.default_rng(spec.seed)
    y = _sample_labels(spec, rng)
    centroids = _class_centroids(spec, rng)

    latent = centroids[y] + rng.normal(size=(spec.n_samples, spec.n_informative))

    # Mix the informative latent space into the observed informative features
    # through a random full-rank linear map, then append pure-noise features.
    n_obs_informative = spec.n_features - spec.noise_features
    mixing = rng.normal(size=(spec.n_informative, n_obs_informative))
    informative = latent @ mixing

    parts = [informative]
    if spec.noise_features > 0:
        parts.append(rng.normal(size=(spec.n_samples, spec.noise_features)))
    X = np.hstack(parts)

    if spec.feature_correlation > 0.0:
        common = rng.normal(size=(spec.n_samples, 1))
        rho = spec.feature_correlation
        X = np.sqrt(1.0 - rho) * X + np.sqrt(rho) * common

    # Per-feature affine shifts/scales so raw features look like heterogeneous
    # physical measurements before min-max normalisation.
    scales = rng.uniform(0.5, 5.0, size=spec.n_features)
    shifts = rng.uniform(-3.0, 10.0, size=spec.n_features)
    X = X * scales + shifts

    if spec.label_noise > 0.0:
        flip = rng.random(spec.n_samples) < spec.label_noise
        if spec.ordinal:
            # Ordinal label noise: off-by-one score errors, like human wine tasters.
            delta = rng.choice([-1, 1], size=spec.n_samples)
            noisy = np.clip(y + delta, 0, spec.n_classes - 1)
        else:
            noisy = rng.integers(0, spec.n_classes, size=spec.n_samples)
        y = np.where(flip, noisy, y)

    return X.astype(float), y.astype(np.int64)


@dataclass
class SyntheticDataset:
    """A generated dataset plus its provenance spec."""

    name: str
    X: np.ndarray
    y: np.ndarray
    spec: SyntheticSpec
    feature_names: Sequence[str] = field(default_factory=list)
    description: str = ""

    @property
    def n_samples(self) -> int:
        return int(self.X.shape[0])

    @property
    def n_features(self) -> int:
        return int(self.X.shape[1])

    @property
    def n_classes(self) -> int:
        return int(len(np.unique(self.y)))

    def class_distribution(self) -> np.ndarray:
        """Fraction of samples per class."""
        counts = np.bincount(self.y, minlength=self.n_classes).astype(float)
        return counts / counts.sum()


def generate_dataset(
    name: str,
    spec: SyntheticSpec,
    feature_names: Optional[Sequence[str]] = None,
    description: str = "",
) -> SyntheticDataset:
    """Generate a named dataset from its spec."""
    X, y = make_classification(spec)
    if feature_names is None:
        feature_names = [f"f{i}" for i in range(spec.n_features)]
    if len(feature_names) != spec.n_features:
        raise ValueError("feature_names length must equal n_features")
    return SyntheticDataset(
        name=name,
        X=X,
        y=y,
        spec=spec,
        feature_names=list(feature_names),
        description=description,
    )
