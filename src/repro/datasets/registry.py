"""Dataset registry: one place that knows every dataset the evaluation uses.

The registry maps the dataset names used throughout the paper's Table I
("Cardio", "Derm.", "PD", "RW", "WW") and their long forms to generator
functions, and caches generated datasets so repeated calls inside a test or
benchmark session do not regenerate the data.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.datasets.synthetic import SyntheticDataset
from repro.datasets import uci

#: Generator registry keyed by canonical dataset name.
_GENERATORS: Dict[str, Callable[..., SyntheticDataset]] = {
    "cardio": uci.make_cardio,
    "dermatology": uci.make_dermatology,
    "pendigits": uci.make_pendigits,
    "redwine": uci.make_redwine,
    "whitewine": uci.make_whitewine,
}

#: Aliases matching the abbreviations used in the paper's Table I.
_ALIASES: Dict[str, str] = {
    "cardio": "cardio",
    "cardiotocography": "cardio",
    "derm": "dermatology",
    "derm.": "dermatology",
    "dermatology": "dermatology",
    "pd": "pendigits",
    "pendigits": "pendigits",
    "pen-digits": "pendigits",
    "rw": "redwine",
    "redwine": "redwine",
    "red-wine": "redwine",
    "ww": "whitewine",
    "whitewine": "whitewine",
    "white-wine": "whitewine",
}

_CACHE: Dict[tuple, SyntheticDataset] = {}


def canonical_name(name: str) -> str:
    """Resolve a dataset name or paper abbreviation to its canonical form."""
    key = name.strip().lower()
    if key not in _ALIASES:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(set(_ALIASES.values()))}"
        )
    return _ALIASES[key]


def available_datasets() -> List[str]:
    """Canonical names of all registered datasets (paper order)."""
    return ["cardio", "dermatology", "pendigits", "redwine", "whitewine"]


def register_dataset(name: str, generator: Callable[..., SyntheticDataset]) -> None:
    """Register a custom dataset generator under a new canonical name."""
    key = name.strip().lower()
    if key in _ALIASES and _ALIASES[key] != key:
        raise ValueError(f"name {name!r} collides with an existing alias")
    _GENERATORS[key] = generator
    _ALIASES[key] = key


def load_dataset(
    name: str, seed: Optional[int] = None, n_samples: Optional[int] = None
) -> SyntheticDataset:
    """Load (generate) a dataset by name, with caching.

    Parameters
    ----------
    name:
        Canonical name or paper abbreviation ("PD", "RW", ...).
    seed:
        Override the default generation seed (used by robustness tests).
    n_samples:
        Override the default sample count (used to keep benchmarks fast).
    """
    canon = canonical_name(name)
    cache_key = (canon, seed, n_samples)
    if cache_key not in _CACHE:
        kwargs = {}
        if seed is not None:
            kwargs["seed"] = seed
        if n_samples is not None:
            kwargs["n_samples"] = n_samples
        _CACHE[cache_key] = _GENERATORS[canon](**kwargs)
    return _CACHE[cache_key]


def clear_cache() -> None:
    """Drop all cached datasets (mainly for tests exercising regeneration)."""
    _CACHE.clear()


def dataset_summary() -> List[dict]:
    """Shape summary of every registered dataset (used by docs and examples)."""
    rows = []
    for name in available_datasets():
        ds = load_dataset(name)
        rows.append(
            {
                "name": name,
                "n_samples": ds.n_samples,
                "n_features": ds.n_features,
                "n_classes": ds.n_classes,
                "class_distribution": ds.class_distribution().round(3).tolist(),
            }
        )
    return rows
