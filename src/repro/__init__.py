"""repro — reproduction of "Energy-Efficient Printed Machine Learning
Classifiers with Sequential SVMs" (DATE'25 Late Breaking Results).

The package is organised in four layers:

* :mod:`repro.ml` — classifier training, preprocessing and post-training
  quantization (no scikit-learn dependency).
* :mod:`repro.datasets` — deterministic synthetic stand-ins for the five UCI
  datasets the paper evaluates on.
* :mod:`repro.hw` — the printed-electronics hardware substrate: EGFET-like
  cell library, RTL generators, synthesis, timing/power/area analysis,
  simulation and Verilog export.
* :mod:`repro.core` — the paper's sequential SVM architecture, the parallel
  SVM / MLP baselines and the end-to-end design flow.
* :mod:`repro.eval` — Table I regeneration, claim aggregation, battery
  feasibility and Pareto analysis.
* :mod:`repro.perf` — the compiled bit-parallel simulation engine
  (netlist compile -> uint64-packed evaluation) and the simulator
  throughput benchmarks.

Quickstart
----------
>>> from repro.core import run_sequential_svm_flow, fast_config
>>> result = run_sequential_svm_flow("cardio", fast_config())
>>> print(result.report)            # doctest: +SKIP
"""

__version__ = "1.0.0"

from repro.core import (
    FlowConfig,
    ParallelMLPDesign,
    ParallelSVMDesign,
    SequentialSVMDesign,
    fast_config,
    run_dataset_comparison,
    run_flow,
    run_parallel_mlp_flow,
    run_parallel_svm_flow,
    run_sequential_svm_flow,
)
from repro.eval import generate_table1, format_table1, table1_aggregates

__all__ = [
    "__version__",
    "FlowConfig",
    "ParallelMLPDesign",
    "ParallelSVMDesign",
    "SequentialSVMDesign",
    "fast_config",
    "run_dataset_comparison",
    "run_flow",
    "run_parallel_mlp_flow",
    "run_parallel_svm_flow",
    "run_sequential_svm_flow",
    "generate_table1",
    "format_table1",
    "table1_aggregates",
]
