"""Load generation and SLO measurement for the serving stack.

The serving claims in the paper's setting are throughput/latency claims, so
this module makes them measurable: seeded, reproducible load against a live
:class:`~repro.serve.server.ModelServer` (in-process or fleet) with the two
canonical driving disciplines:

* **Open loop** (:func:`run_open_loop`) — requests arrive on a schedule
  drawn *in advance* from a Poisson process (``sustained``) or an
  alternating high/low-rate process (``bursty``), independent of how fast
  the server answers.  Latency is measured from the *intended* arrival
  time, so queueing delay under overload is charged to the server — the
  discipline that avoids coordinated omission and exposes p99/p999 tails.
* **Closed loop** (:func:`run_closed_loop`) — ``n_clients`` synchronous
  clients each keep exactly one burst in flight, which measures sustainable
  aggregate throughput (the number the multi-worker speedup is defined on).

:func:`find_saturation` ramps the open-loop offered rate geometrically
until the achieved rate falls below a fraction of it — the saturation knee.

Example::

    mix = [ModelTraffic("redwine/ours", rows_a), ModelTraffic("cardio/ours", rows_b)]
    result = run_open_loop(server, mix, rate=500.0, duration_s=2.0)
    result.latency_p99_ms, result.achieved_rate
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.serve.stats import percentile

#: Bursty open-loop defaults: the burst windows run at ``burst_factor`` times
#: the mean rate for ``burst_fraction`` of the wall clock, with the calm
#: windows slowed so the *mean* offered rate still equals ``rate``.
DEFAULT_BURST_FACTOR = 4.0
DEFAULT_BURST_FRACTION = 0.2
#: Window length the bursty schedule alternates on (seconds).
BURST_PERIOD_S = 0.25


@dataclass(frozen=True)
class ModelTraffic:
    """One model's share of a traffic mix.

    Example::

        ModelTraffic("redwine/ours", rows=X_test, weight=2.0)  # 2x the traffic
    """

    name: str
    #: Pool of valid single-sample feature rows requests are drawn from.
    rows: np.ndarray
    weight: float = 1.0


@dataclass
class LoadResult:
    """The outcome of one load run, JSON-ready via :meth:`to_json`.

    ``latency_*`` fields are per-request service latencies in milliseconds;
    for open-loop runs they are measured from the scheduled arrival time
    (queueing under overload counts against the server).
    """

    discipline: str
    pattern: str
    offered_rate: float
    achieved_rate: float
    n_requests: int
    n_errors: int
    duration_s: float
    latency_p50_ms: float
    latency_p99_ms: float
    latency_p999_ms: float
    latency_max_ms: float
    requests_by_model: Dict[str, int] = field(default_factory=dict)

    def to_json(self) -> Dict[str, object]:
        """Plain-dict view for ``BENCH_serving.json``."""
        return {
            "discipline": self.discipline,
            "pattern": self.pattern,
            "offered_rate_per_s": self.offered_rate,
            "achieved_rate_per_s": self.achieved_rate,
            "n_requests": self.n_requests,
            "n_errors": self.n_errors,
            "duration_s": self.duration_s,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p99_ms": self.latency_p99_ms,
            "latency_p999_ms": self.latency_p999_ms,
            "latency_max_ms": self.latency_max_ms,
            "requests_by_model": dict(self.requests_by_model),
        }


def _summarize(
    discipline: str,
    pattern: str,
    offered_rate: float,
    latencies_s: Sequence[float],
    n_errors: int,
    duration_s: float,
    by_model: Dict[str, int],
) -> LoadResult:
    ordered = sorted(latencies_s)
    duration_s = max(duration_s, 1e-9)
    return LoadResult(
        discipline=discipline,
        pattern=pattern,
        offered_rate=offered_rate,
        achieved_rate=len(ordered) / duration_s,
        n_requests=len(ordered),
        n_errors=n_errors,
        duration_s=duration_s,
        latency_p50_ms=1000.0 * percentile(ordered, 0.50),
        latency_p99_ms=1000.0 * percentile(ordered, 0.99),
        latency_p999_ms=1000.0 * percentile(ordered, 0.999),
        latency_max_ms=1000.0 * (ordered[-1] if ordered else 0.0),
        requests_by_model=by_model,
    )


# --------------------------------------------------------------------------- #
# Arrival schedules
# --------------------------------------------------------------------------- #
def _poisson_arrivals(
    rng: np.random.Generator, rate: float, start: float, end: float
) -> List[float]:
    """Poisson-process arrival times in ``[start, end)`` at ``rate`` req/s."""
    if rate <= 0.0 or end <= start:
        return []
    # Draw with ~4 sigma headroom, then extend in the rare shortfall case.
    times: List[float] = []
    t = start
    expected = int(rate * (end - start)) + 1
    while t < end:
        gaps = rng.exponential(1.0 / rate, size=max(expected, 16))
        for gap in gaps:
            t += gap
            if t >= end:
                break
            times.append(t)
    return times


def build_schedule(
    rate: float,
    duration_s: float,
    pattern: str = "sustained",
    burst_factor: float = DEFAULT_BURST_FACTOR,
    burst_fraction: float = DEFAULT_BURST_FRACTION,
    seed: int = 0,
) -> List[float]:
    """Arrival times (seconds from start) for one open-loop run.

    ``sustained`` is a plain Poisson process at ``rate``.  ``bursty``
    alternates :data:`BURST_PERIOD_S` windows between ``burst_factor *
    rate`` (for ``burst_fraction`` of the time) and a calm rate chosen so
    the mean offered rate is still ``rate`` — same total load, spikier.

    Example::

        >>> len(build_schedule(1000.0, 1.0, seed=1)) in range(900, 1100)
        True
    """
    rng = np.random.default_rng(seed)
    if pattern == "sustained":
        return _poisson_arrivals(rng, rate, 0.0, duration_s)
    if pattern != "bursty":
        raise ValueError(f"unknown arrival pattern {pattern!r}")
    if not 0.0 < burst_fraction < 1.0:
        raise ValueError("burst_fraction must be in (0, 1)")
    calm_rate = rate * max(1.0 - burst_fraction * burst_factor, 0.0) / (
        1.0 - burst_fraction
    )
    times: List[float] = []
    t = 0.0
    while t < duration_s:
        burst_end = min(t + burst_fraction * BURST_PERIOD_S, duration_s)
        calm_end = min(t + BURST_PERIOD_S, duration_s)
        times.extend(_poisson_arrivals(rng, burst_factor * rate, t, burst_end))
        times.extend(_poisson_arrivals(rng, calm_rate, burst_end, calm_end))
        t = calm_end
    return times


def _draw_mix(
    rng: np.random.Generator, mix: Sequence[ModelTraffic], n: int
) -> Tuple[List[str], List[np.ndarray]]:
    """Per-request (model name, feature row) draws, weighted by the mix."""
    if not mix:
        raise ValueError("traffic mix is empty")
    weights = np.asarray([max(m.weight, 0.0) for m in mix], dtype=float)
    if weights.sum() <= 0.0:
        raise ValueError("traffic mix weights sum to zero")
    choices = rng.choice(len(mix), size=n, p=weights / weights.sum())
    names: List[str] = []
    rows: List[np.ndarray] = []
    for which in choices:
        entry = mix[which]
        names.append(entry.name)
        rows.append(entry.rows[rng.integers(entry.rows.shape[0])])
    return names, rows


# --------------------------------------------------------------------------- #
# Driving disciplines
# --------------------------------------------------------------------------- #
def run_open_loop(
    server,
    mix: Sequence[ModelTraffic],
    rate: float,
    duration_s: float,
    pattern: str = "sustained",
    burst_factor: float = DEFAULT_BURST_FACTOR,
    burst_fraction: float = DEFAULT_BURST_FRACTION,
    seed: int = 0,
    timeout_s: float = 60.0,
) -> LoadResult:
    """Drive ``server`` open-loop and report achieved rate + latency tails.

    Requests fire on the precomputed schedule regardless of responses; each
    latency runs from the request's *scheduled* arrival to its completion,
    so a server that falls behind shows the backlog in its p99/p999.

    Example::

        result = run_open_loop(server, mix, rate=800.0, duration_s=2.0,
                               pattern="bursty", seed=3)
        assert result.n_requests + result.n_errors > 0
    """
    schedule = build_schedule(
        rate, duration_s, pattern, burst_factor, burst_fraction, seed
    )
    names, rows = _draw_mix(np.random.default_rng(seed + 1), mix, len(schedule))
    latencies: List[float] = []
    errors = [0]
    lock = threading.Lock()
    done = threading.Semaphore(0)

    def finished(scheduled_at: float, name: str, future: Future) -> None:
        now = time.monotonic()
        with lock:
            if future.exception() is not None:
                errors[0] += 1
            else:
                latencies.append(now - scheduled_at)
        done.release()

    start = time.monotonic()
    issued = 0
    by_model: Dict[str, int] = {}
    for offset, name, row in zip(schedule, names, rows):
        scheduled_at = start + offset
        delay = scheduled_at - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        try:
            future = server.submit(name, row.reshape(1, -1))
        except Exception:
            with lock:
                errors[0] += 1
            done.release()
        else:
            future.add_done_callback(
                lambda f, t=scheduled_at, n=name: finished(t, n, f)
            )
        by_model[name] = by_model.get(name, 0) + 1
        issued += 1
    deadline = time.monotonic() + timeout_s
    for _ in range(issued):
        if not done.acquire(timeout=max(deadline - time.monotonic(), 0.001)):
            break
    elapsed = time.monotonic() - start
    return _summarize(
        "open_loop", pattern, rate, latencies, errors[0], elapsed, by_model
    )


def run_closed_loop(
    server,
    mix: Sequence[ModelTraffic],
    n_clients: int = 4,
    requests_per_client: int = 1024,
    burst: int = 64,
    seed: int = 0,
) -> LoadResult:
    """Drive ``server`` closed-loop and report aggregate throughput.

    Each client keeps one ``burst``-row batch of single-sample requests in
    flight at a time (every row coalesces in the owning lane's
    micro-batcher like an independent request).  Aggregate requests/s over
    all clients is the throughput number the multi-worker speedup floor is
    asserted on.

    Example::

        result = run_closed_loop(server, mix, n_clients=4,
                                 requests_per_client=512)
        result.achieved_rate    # aggregate req/s
    """
    latencies: List[List[float]] = [[] for _ in range(n_clients)]
    errors = [0] * n_clients
    counts: List[Dict[str, int]] = [{} for _ in range(n_clients)]

    def client(index: int) -> None:
        rng = np.random.default_rng(seed + 1000 * (index + 1))
        remaining = requests_per_client
        while remaining > 0:
            size = min(burst, remaining)
            names, rows = _draw_mix(rng, mix, 1)
            name = names[0]
            entry = next(m for m in mix if m.name == name)
            block = entry.rows[rng.integers(entry.rows.shape[0], size=size)]
            begin = time.monotonic()
            try:
                futures = server.submit_many(name, block)
                for future in futures:
                    future.result()
            except Exception:
                errors[index] += size
            else:
                per_request = (time.monotonic() - begin) / size
                latencies[index].extend([per_request] * size)
                counts[index][name] = counts[index].get(name, 0) + size
            remaining -= size

    threads = [
        threading.Thread(target=client, args=(i,), name=f"loadgen-client-{i}")
        for i in range(n_clients)
    ]
    start = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.monotonic() - start
    merged: List[float] = [value for chunk in latencies for value in chunk]
    by_model: Dict[str, int] = {}
    for chunk in counts:
        for name, n in chunk.items():
            by_model[name] = by_model.get(name, 0) + n
    total_errors = sum(errors)
    result = _summarize(
        "closed_loop", "closed", 0.0, merged, total_errors, elapsed, by_model
    )
    result.offered_rate = result.achieved_rate  # closed loop offers = achieves
    return result


def find_saturation(
    server,
    mix: Sequence[ModelTraffic],
    start_rate: float = 200.0,
    duration_s: float = 0.5,
    growth: float = 2.0,
    achieved_floor: float = 0.85,
    max_steps: int = 8,
    seed: int = 0,
) -> Dict[str, object]:
    """Geometric open-loop rate ramp to the server's saturation knee.

    Doubles (``growth``) the offered rate until the achieved rate drops
    below ``achieved_floor`` of it (or errors appear), and reports the last
    sustainable rate plus every step's measurement.

    Example::

        knee = find_saturation(server, mix, start_rate=100.0)
        knee["saturation_rate_per_s"], len(knee["steps"])
    """
    steps: List[Dict[str, object]] = []
    sustainable = 0.0
    rate = start_rate
    for step in range(max_steps):
        result = run_open_loop(
            server, mix, rate=rate, duration_s=duration_s, seed=seed + step
        )
        record = result.to_json()
        saturated = (
            result.achieved_rate < achieved_floor * rate or result.n_errors > 0
        )
        record["saturated"] = saturated
        steps.append(record)
        if saturated:
            break
        sustainable = result.achieved_rate
        rate *= growth
    return {
        "start_rate_per_s": start_rate,
        "growth": growth,
        "achieved_floor": achieved_floor,
        "saturation_rate_per_s": sustainable,
        "steps": steps,
    }
