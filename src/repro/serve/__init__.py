"""Batch inference serving on top of the compiled simulators.

The request-facing layer of the repository (the ROADMAP's "batch serving
API on top of ``run_batch``" open item): load trained designs through the
persistent flow cache, accept single and bulk predict requests — over HTTP
or in process — and coalesce concurrent traffic through an async
micro-batching queue onto the PR 1 single-matmul / bit-parallel hot paths.
The server runs either in-process (``workers=0``, the bit-exact oracle) or
as a frontend routing to a fleet of worker processes (``workers=N``) so
concurrent models stop contending on one GIL.

Layering (see ``docs/architecture.md`` and ``docs/serving.md``):

* :mod:`repro.serve.registry` — ``"<dataset>/<kind>"`` -> trained design,
  via :func:`repro.core.flow_executor.run_flow_cached` (train-or-load);
* :mod:`repro.serve.model` — the uniform vectorized prediction surface
  (:class:`ServedModel`, bit-identical to the design's ``run_batch``);
* :mod:`repro.serve.batching` — the micro-batching queue
  (:class:`MicroBatcher`, ``max_batch_size`` / ``max_latency_ms``);
* :mod:`repro.serve.server` — :class:`ModelServer`: per-model lanes and
  stats in-process, or the frontend router (health checks, crash
  restarts, fleet-wide stats, graceful drain) over worker processes;
* :mod:`repro.serve.transport` / :mod:`repro.serve.worker` — the
  length-prefixed binary frame protocol and the worker-process plane
  behind ``workers=N``;
* :mod:`repro.serve.http` / :mod:`repro.serve.client` — the stdlib HTTP
  endpoint (``repro-serve``) and the in-process / HTTP clients;
* :mod:`repro.serve.stats` — requests/s, batch occupancy, p50/p99 latency
  (the ``/stats`` route);
* :mod:`repro.serve.loadgen` — seeded open/closed-loop load generation,
  p50/p99/p999 SLO measurement and saturation search;
* :mod:`repro.serve.bench` — the ``BENCH_serving.json`` throughput
  benchmark: the >=5x micro-batching floor plus the multi-worker
  fleet-vs-oracle section.

Example::

    from repro.core.design_flow import fast_config
    from repro.serve import Client, ModelRegistry, ModelServer

    registry = ModelRegistry(config=fast_config())
    with ModelServer(registry, workers=4) as server:
        client = Client(server)
        client.predict("redwine/ours", [0.5] * 11)   # 11 redwine features
"""

from repro.serve.batching import BatcherClosed, MicroBatcher
from repro.serve.bench import run_multi_worker_benchmark, run_serving_benchmark
from repro.serve.client import Client, HTTPClient, HTTPError
from repro.serve.http import ServingHTTPServer, build_http_server, serve_in_thread
from repro.serve.loadgen import (
    LoadResult,
    ModelTraffic,
    find_saturation,
    run_closed_loop,
    run_open_loop,
)
from repro.serve.model import ServedModel
from repro.serve.registry import ModelRegistry, parse_model_name
from repro.serve.server import (
    DEFAULT_MAX_BATCH_SIZE,
    DEFAULT_MAX_LATENCY_MS,
    ModelServer,
    ServerClosed,
)
from repro.serve.stats import StatsRecorder
from repro.serve.transport import TransportError, WorkerCrashed
from repro.serve.worker import WorkerHandle, WorkerSpec

__all__ = [
    "BatcherClosed",
    "MicroBatcher",
    "run_multi_worker_benchmark",
    "run_serving_benchmark",
    "Client",
    "HTTPClient",
    "HTTPError",
    "ServingHTTPServer",
    "build_http_server",
    "serve_in_thread",
    "LoadResult",
    "ModelTraffic",
    "find_saturation",
    "run_closed_loop",
    "run_open_loop",
    "ServedModel",
    "ModelRegistry",
    "parse_model_name",
    "DEFAULT_MAX_BATCH_SIZE",
    "DEFAULT_MAX_LATENCY_MS",
    "ModelServer",
    "ServerClosed",
    "StatsRecorder",
    "TransportError",
    "WorkerCrashed",
    "WorkerHandle",
    "WorkerSpec",
]
