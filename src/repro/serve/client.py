"""Clients for the serving subsystem: in-process and HTTP.

Both clients speak the same three verbs — ``predict`` (single sample),
``predict_many`` (bulk) and ``stats`` — and return the same JSON-shaped
dicts, so tests and benchmarks can swap transports freely:

* :class:`Client` calls the :class:`~repro.serve.server.ModelServer`
  directly (no sockets), which is what the test suite and the serving
  benchmark use;
* :class:`HTTPClient` drives the real endpoint over one persistent
  (keep-alive) ``http.client`` connection (stdlib), which is what an
  external consumer of ``repro-serve`` sees.

Example::

    client = Client(model_server)
    client.predict("redwine/ours", x)["prediction"]
    remote = HTTPClient("http://127.0.0.1:8000")
    remote.predict("redwine/ours", list(x))["prediction"]
"""

from __future__ import annotations

import http.client
import json
import threading
import urllib.parse
from typing import Dict, Optional, Sequence, Union

import numpy as np

from repro.serve.server import ModelServer


class Client:
    """In-process client: the ModelServer API with the HTTP response shape.

    Example::

        with ModelServer(registry) as server:
            client = Client(server)
            out = client.predict_many("redwine/ours", X_test)
            out["predictions"]          # decoded labels, list
    """

    def __init__(self, server: ModelServer) -> None:
        self.server = server

    def predict(self, model: str, features: Union[Sequence, np.ndarray]) -> Dict:
        """Single-sample predict; returns the ``/predict`` response dict."""
        return self.server.predict(model, features)

    def predict_many(self, model: str, batch: Union[Sequence, np.ndarray]) -> Dict:
        """Bulk predict through the micro-batching queue."""
        return self.server.predict_many(model, batch)

    def submit(self, model: str, batch: Union[Sequence, np.ndarray]):
        """Asynchronous submit; returns a future of class ids.

        The concurrency primitive the serving benchmark drives: thousands
        of outstanding futures coalesce into few vectorized micro-batches.
        """
        return self.server.submit(model, batch)

    def submit_many(self, model: str, rows: Union[Sequence, np.ndarray]):
        """Burst submit: one future per row, amortized bookkeeping."""
        return self.server.submit_many(model, rows)

    def stats(self) -> Dict:
        """The server's ``/stats`` document."""
        return self.server.stats()

    def models(self) -> Dict:
        """The server's ``/models`` document."""
        return {"models": self.server.models()}


class HTTPError(RuntimeError):
    """A non-2xx response from the serving endpoint.

    Example::

        try:
            client.predict("redwine/ours", [0.1])   # wrong feature count
        except HTTPError as error:
            error.status                            # 400
    """

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class HTTPClient:
    """Minimal stdlib client for the ``repro-serve`` HTTP endpoint.

    Keeps one persistent HTTP/1.1 connection to the server and reuses it
    across requests (the endpoint speaks keep-alive), so a request costs a
    round trip instead of a TCP handshake plus a round trip.  The connection
    is re-established transparently — with a single retry — when the server
    closes it (idle timeout, restart).  Thread-safe: concurrent callers
    serialize on the connection; use one client per thread for parallel
    load.

    Example::

        client = HTTPClient("http://127.0.0.1:8000", timeout=5.0)
        client.healthz()["status"]                  # "ok"
        client.predict("redwine/ours", [0.2] * 11)  # decoded prediction dict
        client.close()                              # drop the kept socket
    """

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        parsed = urllib.parse.urlsplit(self.base_url)
        if parsed.scheme not in ("http", ""):
            raise ValueError(f"unsupported scheme {parsed.scheme!r} (http only)")
        self._host = parsed.hostname or "127.0.0.1"
        self._port = parsed.port or 80
        self._path_prefix = parsed.path.rstrip("/")
        self._conn: Optional[http.client.HTTPConnection] = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self._host, self._port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        """Drop the persistent connection (re-opened lazily on next use)."""
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    def __enter__(self) -> "HTTPClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _request(self, path: str, payload: Union[Dict, None] = None) -> Dict:
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        method = "GET" if payload is None else "POST"
        url = f"{self._path_prefix}{path}"
        # Only a dropped kept socket warrants the transparent resend; a
        # timeout (or any other error) must propagate — the server may have
        # received and be processing the first copy of the request.
        retryable = (
            http.client.RemoteDisconnected,
            http.client.BadStatusLine,
            http.client.CannotSendRequest,
            ConnectionError,
        )
        with self._lock:
            # One transparent retry on a fresh connection covers the server
            # having dropped the kept socket between requests.
            for attempt in (0, 1):
                conn = self._connection()
                try:
                    conn.request(method, url, body=data, headers=headers)
                    response = conn.getresponse()
                    body = response.read()
                except retryable:
                    conn.close()
                    self._conn = None
                    if attempt:
                        raise
                    continue
                except (http.client.HTTPException, OSError):
                    conn.close()
                    self._conn = None
                    raise
                if response.status >= 400:
                    try:
                        message = json.loads(body.decode("utf-8")).get("error", "")
                    except Exception:
                        message = response.reason
                    raise HTTPError(response.status, message)
                return json.loads(body.decode("utf-8"))
        raise RuntimeError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------ #
    def predict(self, model: str, features: Sequence) -> Dict:
        """POST ``/predict`` with one sample's features."""
        return self._request("/predict", {"model": model, "features": list(features)})

    def predict_many(self, model: str, batch: Sequence) -> Dict:
        """POST ``/predict`` with a bulk ``batch`` of samples."""
        rows = [list(row) for row in batch]
        return self._request("/predict", {"model": model, "batch": rows})

    def stats(self) -> Dict:
        """GET ``/stats``."""
        return self._request("/stats")

    def models(self) -> Dict:
        """GET ``/models``."""
        return self._request("/models")

    def healthz(self) -> Dict:
        """GET ``/healthz``."""
        return self._request("/healthz")
