"""Clients for the serving subsystem: in-process and HTTP.

Both clients speak the same three verbs — ``predict`` (single sample),
``predict_many`` (bulk) and ``stats`` — and return the same JSON-shaped
dicts, so tests and benchmarks can swap transports freely:

* :class:`Client` calls the :class:`~repro.serve.server.ModelServer`
  directly (no sockets), which is what the test suite and the serving
  benchmark use;
* :class:`HTTPClient` drives the real endpoint over one persistent
  (keep-alive) ``http.client`` connection (stdlib), which is what an
  external consumer of ``repro-serve`` sees.

Example::

    client = Client(model_server)
    client.predict("redwine/ours", x)["prediction"]
    remote = HTTPClient("http://127.0.0.1:8000")
    remote.predict("redwine/ours", list(x))["prediction"]
"""

from __future__ import annotations

import http.client
import json
import threading
import time
import urllib.parse
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.serve.server import ModelServer


class Client:
    """In-process client: the ModelServer API with the HTTP response shape.

    Example::

        with ModelServer(registry) as server:
            client = Client(server)
            out = client.predict_many("redwine/ours", X_test)
            out["predictions"]          # decoded labels, list
    """

    def __init__(self, server: ModelServer) -> None:
        self.server = server

    def predict(self, model: str, features: Union[Sequence, np.ndarray]) -> Dict:
        """Single-sample predict; returns the ``/predict`` response dict."""
        return self.server.predict(model, features)

    def predict_many(self, model: str, batch: Union[Sequence, np.ndarray]) -> Dict:
        """Bulk predict through the micro-batching queue."""
        return self.server.predict_many(model, batch)

    def submit(self, model: str, batch: Union[Sequence, np.ndarray]):
        """Asynchronous submit; returns a future of class ids.

        The concurrency primitive the serving benchmark drives: thousands
        of outstanding futures coalesce into few vectorized micro-batches.
        """
        return self.server.submit(model, batch)

    def submit_many(self, model: str, rows: Union[Sequence, np.ndarray]):
        """Burst submit: one future per row, amortized bookkeeping."""
        return self.server.submit_many(model, rows)

    def stats(self) -> Dict:
        """The server's ``/stats`` document."""
        return self.server.stats()

    def models(self) -> Dict:
        """The server's ``/models`` document."""
        return {"models": self.server.models()}


class HTTPError(RuntimeError):
    """A non-2xx response from the serving endpoint.

    Example::

        try:
            client.predict("redwine/ours", [0.1])   # wrong feature count
        except HTTPError as error:
            error.status                            # 400
    """

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class HTTPClient:
    """Minimal stdlib client for the ``repro-serve`` HTTP endpoint.

    Keeps one persistent HTTP/1.1 connection to the server and reuses it
    across requests (the endpoint speaks keep-alive), so a request costs a
    round trip instead of a TCP handshake plus a round trip.  The connection
    is re-established transparently when the server closes it (idle timeout,
    restart), with up to ``retries`` resends under exponential backoff.
    Predict requests additionally retry on a ``503`` answer — the status a
    draining or not-yet-ready server returns — because the served kernels
    are pure functions of their rows: resending is idempotent, so a worker
    restart behind the frontend is invisible to callers.  Other verbs never
    retry on status (a ``healthz`` 503 *is* the answer).  Thread-safe:
    concurrent callers serialize on the connection; use one client per
    thread for parallel load.

    Example::

        client = HTTPClient("http://127.0.0.1:8000", timeout=5.0)
        client.wait_ready()                         # poll until serving
        client.predict("redwine/ours", [0.2] * 11)  # decoded prediction dict
        client.close()                              # drop the kept socket
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        retries: int = 3,
        backoff_s: float = 0.05,
        max_backoff_s: float = 1.0,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if max_backoff_s < 0:
            raise ValueError("max_backoff_s must be >= 0")
        self.retries = int(retries)
        self.backoff_s = float(backoff_s)
        self.max_backoff_s = float(max_backoff_s)
        parsed = urllib.parse.urlsplit(self.base_url)
        if parsed.scheme not in ("http", ""):
            raise ValueError(f"unsupported scheme {parsed.scheme!r} (http only)")
        self._host = parsed.hostname or "127.0.0.1"
        self._port = parsed.port or 80
        self._path_prefix = parsed.path.rstrip("/")
        self._conn: Optional[http.client.HTTPConnection] = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self._host, self._port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        """Drop the persistent connection (re-opened lazily on next use)."""
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    def __enter__(self) -> "HTTPClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _request(
        self,
        path: str,
        payload: Union[Dict, None] = None,
        retry_status: Tuple[int, ...] = (),
    ) -> Dict:
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        method = "GET" if payload is None else "POST"
        url = f"{self._path_prefix}{path}"
        # Only a dropped or refused socket warrants the transparent resend; a
        # timeout (or any other error) must propagate — the server may have
        # received and be processing the first copy of the request.
        retryable = (
            http.client.RemoteDisconnected,
            http.client.BadStatusLine,
            http.client.CannotSendRequest,
            ConnectionError,
        )
        with self._lock:
            # Bounded resends on a fresh connection, backing off 50/100/200ms
            # (capped at max_backoff_s so a large retry budget cannot turn
            # into minute-long exponential sleeps): covers the server
            # dropping the kept socket between requests and (for callers
            # passing retry_status) a 503 from a drain window.
            for attempt in range(self.retries + 1):
                final = attempt == self.retries
                if attempt:
                    time.sleep(
                        min(self.backoff_s * (1 << (attempt - 1)), self.max_backoff_s)
                    )
                conn = self._connection()
                try:
                    conn.request(method, url, body=data, headers=headers)
                    response = conn.getresponse()
                    body = response.read()
                except retryable:
                    conn.close()
                    self._conn = None
                    if final:
                        raise
                    continue
                except (http.client.HTTPException, OSError):
                    conn.close()
                    self._conn = None
                    raise
                if response.status in retry_status and not final:
                    continue
                if response.status >= 400:
                    try:
                        message = json.loads(body.decode("utf-8")).get("error", "")
                    except Exception:
                        message = response.reason
                    raise HTTPError(response.status, message)
                return json.loads(body.decode("utf-8"))
        raise RuntimeError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------ #
    def predict(self, model: str, features: Sequence) -> Dict:
        """POST ``/predict`` with one sample's features.

        Idempotent (the kernels are pure), so a 503 from a draining or
        restarting server is retried with backoff.
        """
        return self._request(
            "/predict",
            {"model": model, "features": list(features)},
            retry_status=(503,),
        )

    def predict_many(self, model: str, batch: Sequence) -> Dict:
        """POST ``/predict`` with a bulk ``batch`` of samples.

        Idempotent like :meth:`predict`: retried with backoff on a 503.
        """
        rows = [list(row) for row in batch]
        return self._request(
            "/predict", {"model": model, "batch": rows}, retry_status=(503,)
        )

    def stats(self) -> Dict:
        """GET ``/stats``."""
        return self._request("/stats")

    def models(self) -> Dict:
        """GET ``/models``."""
        return self._request("/models")

    def healthz(self) -> Dict:
        """GET ``/healthz`` (never retried on status: the 503 is the answer)."""
        return self._request("/healthz")

    def wait_ready(self, timeout_s: float = 30.0, interval_s: float = 0.05) -> Dict:
        """Poll ``/healthz`` until the server reports ``ready``.

        The boot handshake bench scripts and tests use instead of sleeping:
        in fleet mode ``ready`` only turns true once every worker process
        has answered a heartbeat.  Returns the final health document;
        raises ``TimeoutError`` if readiness never arrives.

        Example::

            client = HTTPClient(url)
            client.wait_ready(timeout_s=10.0)["ready"]    # True
        """
        deadline = time.monotonic() + timeout_s
        while True:
            try:
                health = self.healthz()
                if health.get("ready"):
                    return health
            except (HTTPError, OSError):
                pass  # booting (refused) or shutting down (503): keep polling
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"server at {self.base_url} not ready within {timeout_s:.0f}s"
                )
            time.sleep(interval_s)
