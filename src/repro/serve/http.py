"""The HTTP JSON endpoint of ``repro-serve`` (stdlib only).

A :class:`ThreadingHTTPServer` front-end over one
:class:`~repro.serve.server.ModelServer`.  Handler threads do nothing but
decode JSON and block on the shared micro-batching queue, so concurrent
HTTP requests coalesce into vectorized micro-batches exactly like
in-process callers.  The endpoint speaks HTTP/1.1 with persistent
(keep-alive) connections — a client reusing its socket skips the TCP
handshake per request, which is what :class:`~repro.serve.client.HTTPClient`
does by default.

Routes
------
* ``POST /predict`` — body ``{"model": "<dataset>/<kind>", "features":
  [...]}`` for one sample, or ``{"model": ..., "batch": [[...], ...]}``
  for bulk; answers labels + class ids + served latency.
* ``GET /stats`` — per-model request rates, batch occupancy, p50/p99.
* ``GET /models`` — metadata of every loaded model.
* ``GET /healthz`` — liveness (``503`` once shutdown has begun) plus a
  ``ready`` field: whether the server — including every worker process in
  fleet mode — can answer predict requests right now.  Bench scripts and
  clients poll it instead of sleeping (see
  :meth:`repro.serve.client.HTTPClient.wait_ready`).

Example::

    registry = ModelRegistry(config=fast_config())
    model_server = ModelServer(registry)
    httpd = serve_in_thread(model_server, port=0)     # ephemeral port
    url = f"http://{httpd.server_address[0]}:{httpd.server_address[1]}"
    # ... requests ...
    httpd.shutdown(); model_server.shutdown()
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro.serve.server import ModelServer, ServerClosed

#: Largest accepted request body (1 MiB keeps bulk requests plentiful while
#: bounding what one connection can make the server buffer).
MAX_BODY_BYTES = 1 << 20


class ServingHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that carries the shared :class:`ModelServer`.

    Example::

        httpd = ServingHTTPServer(("127.0.0.1", 0), model_server)
        httpd.server_address          # actual (host, port) after binding
    """

    #: Handler threads must die with the process (tests, Ctrl-C).
    daemon_threads = True

    def __init__(self, address: Tuple[str, int], model_server: ModelServer) -> None:
        super().__init__(address, _ServingRequestHandler)
        self.model_server = model_server


class _ServingRequestHandler(BaseHTTPRequestHandler):
    """Route dispatch for the serving endpoint (one instance per connection).

    Speaks HTTP/1.1 with persistent connections: every response carries a
    ``Content-Length``, so the stdlib keeps the socket open and a client can
    pipeline thousands of predict requests over one TCP connection instead
    of paying a handshake each (see :class:`repro.serve.client.HTTPClient`,
    which reuses its connection).  Idle connections are dropped after
    :attr:`timeout` seconds so stuck clients cannot pin handler threads.
    """

    server: ServingHTTPServer
    #: HTTP/1.1 enables keep-alive (connection reuse) in the stdlib handler.
    protocol_version = "HTTP/1.1"
    #: Seconds an idle persistent connection may sit between requests.
    timeout = 60.0

    #: Quiet by default: request logging is the caller's business.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    # ------------------------------------------------------------------ #
    def _send_json(self, payload: dict, status: int = 200) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        # Tell the client explicitly whether this socket stays usable; an
        # HTTP/1.1 peer assumes keep-alive unless it reads "close".
        self.send_header(
            "Connection", "close" if self.close_connection else "keep-alive"
        )
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status=status)

    def _read_json_body(self) -> Optional[dict]:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length <= 0:
            # No usable Content-Length (absent, zero, or chunked encoding we
            # never read): anything the client did send would desync the next
            # keep-alive request, so drop the connection.
            self.close_connection = True
            self._send_error_json(400, "missing request body")
            return None
        if length > MAX_BODY_BYTES:
            # The oversized body stays unread; drop the connection instead of
            # letting the next keep-alive request parse it as garbage.
            self.close_connection = True
            self._send_error_json(413, f"request body over {MAX_BODY_BYTES} bytes")
            return None
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            self._send_error_json(400, "request body is not valid JSON")
            return None
        if not isinstance(payload, dict):
            self._send_error_json(400, "request body must be a JSON object")
            return None
        return payload

    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        model_server = self.server.model_server
        if self.path == "/healthz":
            if model_server.closed:
                self._send_json(
                    {"status": "shutting down", "ready": False}, status=503
                )
            else:
                self._send_json({"status": "ok", "ready": model_server.ready})
        elif self.path == "/stats":
            self._send_json(model_server.stats())
        elif self.path == "/models":
            self._send_json({"models": model_server.models()})
        else:
            self._send_error_json(404, f"unknown route {self.path!r}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path != "/predict":
            # The request body stays unread; drop the connection so the next
            # keep-alive request cannot parse it as its request line.
            self.close_connection = True
            self._send_error_json(404, f"unknown route {self.path!r}")
            return
        payload = self._read_json_body()
        if payload is None:
            return
        name = payload.get("model")
        if not isinstance(name, str):
            self._send_error_json(400, "missing string field 'model'")
            return
        has_single = "features" in payload
        has_bulk = "batch" in payload
        if has_single == has_bulk:
            self._send_error_json(
                400, "provide exactly one of 'features' (single) or 'batch' (bulk)"
            )
            return
        model_server = self.server.model_server
        try:
            if has_single:
                result = model_server.predict(name, payload["features"])
            else:
                result = model_server.predict_many(name, payload["batch"])
        except ServerClosed as error:
            self._send_error_json(503, str(error))
        except ValueError as error:
            self._send_error_json(400, str(error))
        except Exception as error:  # unexpected: surface, don't hang the socket
            self._send_error_json(500, f"{type(error).__name__}: {error}")
        else:
            self._send_json(result)


# --------------------------------------------------------------------------- #
def build_http_server(
    model_server: ModelServer, host: str = "127.0.0.1", port: int = 8000
) -> ServingHTTPServer:
    """Bind the serving endpoint (``port=0`` picks an ephemeral port).

    Example::

        httpd = build_http_server(model_server, port=0)
        httpd.serve_forever()      # blocks; Ctrl-C to stop
    """
    return ServingHTTPServer((host, port), model_server)


def serve_in_thread(
    model_server: ModelServer, host: str = "127.0.0.1", port: int = 0
) -> ServingHTTPServer:
    """Run the endpoint on a daemon thread; returns the bound server.

    The test-friendly entry point: the caller reads the ephemeral port off
    ``httpd.server_address`` and stops with ``httpd.shutdown()``.

    Example::

        httpd = serve_in_thread(model_server, port=0)
        port = httpd.server_address[1]
        HTTPClient(f"http://127.0.0.1:{port}").healthz()   # {"status": "ok"}
        httpd.shutdown()
    """
    httpd = build_http_server(model_server, host=host, port=port)
    thread = threading.Thread(
        target=httpd.serve_forever, name="repro-serve-http", daemon=True
    )
    thread.start()
    return httpd
