"""Model registry: name -> trained design, via the persistent flow cache.

The serving layer never trains inline on the request path.  A
:class:`ModelRegistry` resolves ``"<dataset>/<kind>"`` names to
:class:`~repro.serve.model.ServedModel` instances by funneling through
:func:`repro.core.flow_executor.run_flow_cached` — so a model that was ever
trained on this machine (by the CLI, the benchmarks, a previous server run)
loads from the PR 2 persistent on-disk cache in milliseconds, and a cold
name trains exactly once and leaves the cache warm for the next process.
``preload`` fans cold names out across worker processes with
:func:`~repro.core.flow_executor.execute_flow_grid`.

Example::

    registry = ModelRegistry(config=fast_config())
    served = registry.get("redwine/ours")      # trains or loads from cache
    registry.names()                           # ["redwine/ours"]
    registry.get("redwine/ours") is served     # True (instance-cached)
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.design_flow import MODEL_KINDS, FlowConfig
from repro.core.flow_executor import CacheSpec, execute_flow_grid, run_flow_cached
from repro.datasets import available_datasets
from repro.serve.model import ServedModel


def parse_model_name(name: str) -> Tuple[str, str]:
    """Split ``"<dataset>/<kind>"`` (``":"`` also accepted) and validate it.

    Example::

        >>> parse_model_name("redwine/ours")
        ('redwine', 'ours')
    """
    for separator in ("/", ":"):
        if separator in name:
            dataset, _, kind = name.partition(separator)
            break
    else:
        raise ValueError(
            f"model name {name!r} is not of the form '<dataset>/<kind>'"
        )
    if dataset not in available_datasets():
        raise ValueError(
            f"unknown dataset {dataset!r}; expected one of {available_datasets()}"
        )
    if kind not in MODEL_KINDS:
        raise ValueError(f"unknown model kind {kind!r}; expected one of {MODEL_KINDS}")
    return dataset, kind


class ModelRegistry:
    """Lazily resolves model names to loaded :class:`ServedModel` instances.

    Parameters
    ----------
    config:
        Flow configuration every model is trained/loaded at (defaults to the
        paper's full configuration).
    cache:
        Persistent flow-cache selection, as accepted by
        :func:`~repro.core.flow_executor.execute_flow_grid` (``None`` = the
        default on-disk cache, ``False`` = always retrain).
    jobs:
        Worker-process count used by :meth:`preload` for cold names.
    opt_level:
        When set, each loaded linear design's hardwired constant-MAC
        datapath is run through the :mod:`repro.hw.opt` pass pipeline at
        this level and the optimized-vs-raw gate counts are surfaced in the
        model's ``/models`` metadata.

    Example::

        registry = ModelRegistry(config=fast_config(), cache=False)
        registry.preload(["redwine/ours", "redwine/mlp_parallel"])
        model = registry.get("redwine/ours")
    """

    def __init__(
        self,
        config: Optional[FlowConfig] = None,
        cache: CacheSpec = None,
        jobs: Optional[int] = None,
        opt_level: Optional[int] = None,
    ) -> None:
        self.config = config or FlowConfig()
        self.cache = cache
        self.jobs = jobs
        self.opt_level = opt_level
        self._lock = threading.Lock()
        self._models: Dict[str, ServedModel] = {}

    # ------------------------------------------------------------------ #
    def names(self) -> List[str]:
        """Names currently loaded (sorted; lazily-resolvable names absent)."""
        with self._lock:
            return sorted(self._models)

    def register(self, model: ServedModel) -> ServedModel:
        """Install a prebuilt served model (tests, hand-rolled designs)."""
        with self._lock:
            self._models[model.name] = model
        return model

    def get(self, name: str) -> ServedModel:
        """The served model for one name, training/loading it on first use."""
        with self._lock:
            cached = self._models.get(name)
        if cached is not None:
            return cached
        dataset, kind = parse_model_name(name)
        result = run_flow_cached(dataset, kind, self.config, cache=self.cache)
        model = self._wrap(result, name)
        with self._lock:
            # First resolver wins, so concurrent get() calls share one model.
            return self._models.setdefault(name, model)

    def _wrap(self, result, name: str) -> ServedModel:
        """Build the served view, annotating MAC opt stats when requested."""
        from repro.jobs.manifest import job_content_key

        model = ServedModel.from_flow_result(result, name=name)
        # The content key the job service files this result under: lets a
        # /models consumer join served metadata against a `repro-jobs` store.
        model.info["flow_job_id"] = job_content_key(
            result.dataset, result.kind, self.config
        )
        if self.opt_level is not None:
            from repro.eval.table1 import design_mac_netlist
            from repro.hw.opt import optimize

            netlist = design_mac_netlist(result.design)
            if netlist is not None:
                stats = optimize(netlist, level=self.opt_level).stats
                model.info["mac_gates_raw"] = stats.gates_before
                model.info["mac_gates_optimized"] = stats.gates_after
                model.info["mac_opt_level"] = stats.level
        return model

    def preload(self, names: Sequence[str]) -> List[ServedModel]:
        """Resolve many names at once, sharding cold flows across processes.

        Uses :func:`~repro.core.flow_executor.execute_flow_grid`, so names
        already in the persistent cache load without training and the rest
        train ``jobs``-wide (0 = all cores).
        """
        pairs = [parse_model_name(name) for name in names]
        results = execute_flow_grid(
            pairs, config=self.config, jobs=self.jobs, cache=self.cache
        )
        loaded = []
        for name, pair in zip(names, pairs):
            model = self._wrap(results[pair], name)
            with self._lock:
                model = self._models.setdefault(name, model)
            loaded.append(model)
        return loaded
