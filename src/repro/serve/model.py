"""The servable view of one trained design: metadata plus the batch hot path.

A :class:`ServedModel` wraps whatever the design flow produced — the
proposed sequential OvR SVM, a parallel OvO SVM baseline or the parallel
MLP — behind one uniform, *vectorized* prediction surface:

* SVM designs route through their cycle/behaviour-accurate datapath
  simulators' ``run_batch`` (PR 1's single-matmul hot path), so a served
  prediction is bit-identical to what the simulated hardware answers;
* the MLP baseline has no datapath simulator and routes through the
  integer-exact quantized model (the same path its Table I accuracy uses).

Example::

    from repro.core.design_flow import fast_config, run_flow
    from repro.serve.model import ServedModel

    result = run_flow("redwine", "ours", fast_config())
    served = ServedModel.from_flow_result(result)
    served.predict_ids(result.split.X_test[:4])     # class ids, vectorized
    served.predict_labels(result.split.X_test[:4])  # original labels
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.core.design_flow import FlowResult


@dataclass
class ServedModel:
    """One loaded design plus everything the serving layer needs to run it.

    Attributes
    ----------
    name:
        Registry name, conventionally ``"<dataset>/<kind>"``.
    dataset / kind:
        The flow coordinates the design was trained at.
    design:
        The generated hardware design object (kept for metadata and for the
        datapath simulators it owns).
    batch_fn:
        The vectorized kernel: ``(B, n_features) real-valued inputs ->
        (B,) class ids`` — exactly the ``run_batch`` path for SVM designs.
    classes:
        Original class labels indexed by class id (decodes predictions).

    Example::

        served = ServedModel.from_flow_result(run_flow("redwine", "ours"))
        served.predict_labels(X_test[:4])    # vectorized, bit-exact serving
    """

    name: str
    dataset: str
    kind: str
    design: object
    batch_fn: Callable[[np.ndarray], np.ndarray]
    classes: np.ndarray
    n_features: int
    backend: str
    info: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_flow_result(cls, result: FlowResult, name: Optional[str] = None) -> "ServedModel":
        """Wrap a :class:`~repro.core.design_flow.FlowResult` for serving.

        Picks the fastest *behaviour-exact* backend available on the design:
        ``simulate_batch`` (the datapath simulators' vectorized ``run_batch``)
        when present, the quantized integer model otherwise (MLP baseline).

        Example::

            result = run_flow_cached("redwine", "ours", fast_config())
            served = ServedModel.from_flow_result(result)
            assert served.backend == "datapath.run_batch"
        """
        design = result.design
        model = getattr(design, "model", None)
        if model is None or not hasattr(model, "classes"):
            raise TypeError(
                f"design {type(design).__name__} carries no quantized model"
            )
        if hasattr(design, "simulate_batch"):
            batch_fn = design.simulate_batch
            backend = "datapath.run_batch"
        else:
            batch_fn = model.predict_ids
            backend = "quantized_model.predict_ids"
        report = result.report
        from repro.perf.engines import available_engines

        info: Dict[str, object] = {
            "accuracy_percent": float(report.accuracy_percent),
            "area_cm2": float(report.area_cm2),
            "power_mw": float(report.power_mw),
            "latency_ms": float(report.latency_ms),
            "cycles_per_classification": int(report.cycles_per_classification),
            "weight_bits_used": int(result.weight_bits_used),
            "input_bits": int(model.input_format.total_bits),
            # The simulation engines usable on this host (native appears only
            # where a C toolchain exists) — surfaced through /models so
            # clients can see what a worker would run gate-level sweeps with.
            "simulation_engines": list(available_engines()),
        }
        return cls(
            name=name or f"{result.dataset}/{result.kind}",
            dataset=result.dataset,
            kind=result.kind,
            design=design,
            batch_fn=batch_fn,
            classes=np.asarray(model.classes),
            n_features=int(model.n_features),
            backend=backend,
            info=info,
        )

    # ------------------------------------------------------------------ #
    def validate_batch(self, X: np.ndarray) -> np.ndarray:
        """Normalize a request payload to a ``(k, n_features)`` float array.

        1-D inputs are a single sample; wrong feature counts raise
        ``ValueError`` (mapped to HTTP 400 by the endpoint).
        """
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            # A flat vector is one sample; a flat empty list is an empty batch
            # (JSON "batch": [] arrives exactly like this).
            X = X.reshape(1, -1) if X.size else X.reshape(0, self.n_features)
        if X.ndim != 2 or (X.shape[0] > 0 and X.shape[1] != self.n_features):
            raise ValueError(
                f"model {self.name!r} expects {self.n_features} features per "
                f"sample, got shape {X.shape}"
            )
        return X

    def kernel(self, X: np.ndarray) -> np.ndarray:
        """The micro-batch kernel: class ids for *pre-validated* rows.

        The serving queue validates every request at submit time, so the
        worker thread skips re-validation and calls straight into the
        design's ``run_batch`` — this is the function each micro-batch runs.
        """
        return np.asarray(self.batch_fn(X), dtype=np.int64)

    def predict_ids(self, X: np.ndarray) -> np.ndarray:
        """Vectorized class ids for a batch of real-valued inputs.

        Validating public surface over :meth:`kernel`; a served prediction
        is bit-identical to calling the design's ``run_batch`` directly.
        """
        X = self.validate_batch(X)
        if X.shape[0] == 0:
            return np.zeros(0, dtype=np.int64)
        return self.kernel(X)

    def predict_labels(self, X: np.ndarray) -> np.ndarray:
        """Original class labels for a batch of real-valued inputs."""
        return self.classes[self.predict_ids(X)]

    def decode(self, ids: np.ndarray) -> np.ndarray:
        """Map class ids back to the dataset's original labels."""
        return self.classes[np.asarray(ids, dtype=np.int64)]

    def metadata(self) -> Dict[str, object]:
        """JSON-serializable description (the ``/models`` HTTP route)."""
        return {
            "name": self.name,
            "dataset": self.dataset,
            "kind": self.kind,
            "design": type(self.design).__name__,
            "backend": self.backend,
            "n_features": self.n_features,
            "classes": np.asarray(self.classes).tolist(),
            **{k: v for k, v in self.info.items()},
        }
