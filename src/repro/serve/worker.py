"""The worker plane: model lanes hosted in child processes.

One worker process owns a slice of the model fleet — its own
:class:`~repro.serve.registry.ModelRegistry` view plus, per hosted model,
the same :class:`~repro.serve.batching.MicroBatcher` lane the
single-process server uses (the worker literally embeds a ``workers=0``
:class:`~repro.serve.server.ModelServer`).  The frontend feeds it framed
requests over the :mod:`repro.serve.transport` protocol; micro-batching,
stats and drain semantics therefore stay *identical* to the in-process
path, which is what makes ``workers=0`` a bit-exact oracle for the fleet.

Two halves live here:

* :func:`worker_main` — the child process: a receive loop that validates
  and enqueues predict frames onto the model lanes (answers stream back as
  micro-batches complete, out of order, matched by request id), answers
  heartbeats/stats/metadata immediately, and opens cold lanes — which may
  train — on a dedicated thread so heartbeats stay responsive;
* :class:`WorkerHandle` — the parent's view of one worker: spawns the
  child (``fork`` server-style on POSIX), tracks in-flight requests,
  detects crashes via connection EOF and hands the pending requests back
  to the frontend for resubmission on the replacement worker.

Example::

    spec = WorkerSpec(max_batch_size=64, max_latency_ms=0.5)
    handle = WorkerHandle(registry, spec, index=0, on_death=lambda h, p: None)
    handle.call(MSG_CONTROL, ("ping", None)).result(timeout=5.0)
    handle.stop()
"""

from __future__ import annotations

import multiprocessing
import os
import socket
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from itertools import count
from typing import Callable, Dict, Iterable, Optional, Tuple

import numpy as np

from repro.serve.batching import BatcherClosed
from repro.serve.transport import (
    ERROR_CLOSED,
    ERROR_INTERNAL,
    ERROR_VALUE,
    MSG_CONTROL,
    MSG_ERROR,
    MSG_REQUEST,
    MSG_RESPONSE,
    MSG_SHUTDOWN,
    FrameConnection,
    TransportError,
    WorkerCrashed,
    connection_pair,
)

#: Response shapes a predict frame may ask for.
REQUEST_MODES = ("single", "bulk", "ids", "ids_burst")


def _mp_context():
    """``fork`` where available (sockets and registries inherit for free)."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


@dataclass(frozen=True)
class WorkerSpec:
    """Everything one worker needs beyond its registry slice.

    Example::

        WorkerSpec(max_batch_size=256, max_latency_ms=2.0,
                   preopen=("redwine/ours",))
    """

    max_batch_size: int = 256
    max_latency_ms: float = 2.0
    #: Model lanes opened (training/loading if cold) as the worker boots.
    preopen: Tuple[str, ...] = field(default_factory=tuple)


# --------------------------------------------------------------------------- #
# Child side
# --------------------------------------------------------------------------- #
class _ResponseAggregator:
    """Joins the per-row futures of one ``ids_burst`` frame into one answer.

    The burst enters the lane as independent single-sample requests (so it
    coalesces with concurrent traffic exactly like separate submits), but
    travels the wire as one frame each way.
    """

    def __init__(self, n_parts: int, done: Callable[[list, Optional[BaseException]], None]):
        self._parts: list = [None] * n_parts
        self._remaining = n_parts
        self._error: Optional[BaseException] = None
        self._lock = threading.Lock()
        self._done = done

    def collect(self, index: int, future: Future) -> None:
        error = future.exception()
        with self._lock:
            if error is not None and self._error is None:
                self._error = error
            if error is None:
                self._parts[index] = future.result()
            self._remaining -= 1
            finished = self._remaining == 0
        if finished:
            self._done(self._parts, self._error)


class _WorkerRuntime:
    """The receive loop and lane plumbing of one worker process."""

    def __init__(self, conn: FrameConnection, registry, spec: WorkerSpec) -> None:
        # Imported here, not at module top: server.py imports this module
        # for the parent-side handle, and the child only needs ModelServer
        # after the fork.
        from repro.serve.server import ModelServer

        self.conn = conn
        self.spec = spec
        self.inner = ModelServer(
            registry,
            max_batch_size=spec.max_batch_size,
            max_latency_ms=spec.max_latency_ms,
            workers=0,
        )
        #: Lanes known open — the request fast path skips the opener thread.
        self._open_lanes: Dict[str, object] = {}
        #: Single thread for anything that may train (cold lane opens), so
        #: the receive loop keeps answering heartbeats during long loads.
        self._opener = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="worker-open"
        )
        self._started = time.monotonic()

    # -- plumbing -------------------------------------------------------- #
    def _respond(self, req_id: int, payload) -> None:
        try:
            self.conn.send(MSG_RESPONSE, (req_id, payload))
        except OSError:
            pass  # parent is gone; the loop will notice on its next recv

    def _respond_error(self, req_id: int, error: BaseException) -> None:
        from repro.serve.server import ServerClosed

        if isinstance(error, ValueError):
            kind = ERROR_VALUE
        elif isinstance(error, (BatcherClosed, ServerClosed)):
            kind = ERROR_CLOSED
        else:
            kind = ERROR_INTERNAL
        try:
            self.conn.send(MSG_ERROR, (req_id, kind, f"{error}"))
        except OSError:
            pass

    def _lane(self, name: str):
        """Open (possibly training) and memoize one model lane."""
        lane = self.inner.lane(name)
        self._open_lanes[name] = lane
        return lane

    # -- request handling ------------------------------------------------ #
    def _handle_request(self, req_id: int, name: str, mode: str, rows) -> None:
        lane = self._open_lanes.get(name)
        if lane is not None:
            self._dispatch(req_id, lane, mode, rows)
        else:
            # Cold model: route through the opener thread so training never
            # stalls the receive loop (heartbeats keep flowing).
            self._opener.submit(self._dispatch_cold, req_id, name, mode, rows)

    def _dispatch_cold(self, req_id: int, name: str, mode: str, rows) -> None:
        try:
            lane = self._lane(name)
        except BaseException as error:  # unknown name, training failure, ...
            self._respond_error(req_id, error)
            return
        self._dispatch(req_id, lane, mode, rows)

    def _dispatch(self, req_id: int, lane, mode: str, rows) -> None:
        start = time.monotonic()
        try:
            rows = lane.model.validate_batch(rows)
            if mode == "single" and rows.shape[0] != 1:
                raise ValueError(
                    f"predict() serves exactly one sample, got {rows.shape[0]}; "
                    "use predict_many() for bulk requests"
                )
            if mode == "ids_burst":
                self._dispatch_burst(req_id, lane, rows, start)
                return
            future = lane.batcher.submit(rows)
        except BaseException as error:
            lane.stats.observe_error()
            self._respond_error(req_id, error)
            return
        future.add_done_callback(
            lambda f: self._finish(req_id, lane, mode, rows, start, f)
        )

    def _dispatch_burst(self, req_id: int, lane, rows, start: float) -> None:
        if rows.shape[0] == 0:
            self._respond(req_id, np.zeros(0, dtype=np.int64))
            return

        def done(parts, error):
            if error is not None:
                lane.stats.observe_error()
                self._respond_error(req_id, error)
                return
            lane.stats.observe_request(
                latency_s=time.monotonic() - start, n_samples=rows.shape[0]
            )
            self._respond(req_id, np.concatenate(parts, axis=0))

        aggregate = _ResponseAggregator(rows.shape[0], done)
        futures = lane.batcher.submit_many(
            [rows[i : i + 1] for i in range(rows.shape[0])]
        )
        for i, future in enumerate(futures):
            future.add_done_callback(lambda f, i=i: aggregate.collect(i, f))

    def _finish(self, req_id, lane, mode, rows, start, future: Future) -> None:
        """Micro-batch completion callback: shape the answer, send the frame."""
        error = future.exception()
        if error is not None:
            lane.stats.observe_error()
            self._respond_error(req_id, error)
            return
        ids = future.result()
        latency_s = time.monotonic() - start
        lane.stats.observe_request(latency_s=latency_s, n_samples=rows.shape[0])
        if mode == "ids":
            self._respond(req_id, ids)
        elif mode == "single":
            self._respond(
                req_id,
                {
                    "model": lane.model.name,
                    "class_id": int(ids[0]),
                    "prediction": lane.model.decode(ids)[0].item(),
                    "latency_ms": 1000.0 * latency_s,
                },
            )
        else:  # bulk
            self._respond(
                req_id,
                {
                    "model": lane.model.name,
                    "class_ids": [int(i) for i in ids],
                    "predictions": lane.model.decode(ids).tolist(),
                    "n_samples": int(rows.shape[0]),
                    "latency_ms": 1000.0 * latency_s,
                },
            )

    # -- control --------------------------------------------------------- #
    def _handle_control(self, req_id: int, op: str, arg) -> None:
        if op == "ping":
            self._respond(
                req_id,
                {"pid": os.getpid(), "uptime_s": time.monotonic() - self._started},
            )
        elif op == "stats":
            self._respond(req_id, self.inner.stats())
        elif op == "models":
            self._respond(req_id, self.inner.models())
        elif op == "open_lane":
            self._opener.submit(self._open_lane, req_id, arg)
        else:
            self._respond_error(req_id, ValueError(f"unknown control op {op!r}"))

    def _open_lane(self, req_id: int, name: str) -> None:
        try:
            lane = self._lane(name)
        except BaseException as error:
            self._respond_error(req_id, error)
            return
        self._respond(req_id, lane.model.metadata())

    # -- lifecycle ------------------------------------------------------- #
    def run(self) -> None:
        for name in self.spec.preopen:
            self._opener.submit(self._dispatch_cold_open, name)
        drain = False
        try:
            while True:
                try:
                    message = self.conn.recv()
                except TransportError:
                    message = None
                if message is None:
                    break  # parent died: fail fast, don't orphan-serve
                kind, body = message
                if kind == MSG_REQUEST:
                    self._handle_request(*body)
                elif kind == MSG_CONTROL:
                    self._handle_control(*body)
                elif kind == MSG_SHUTDOWN:
                    drain = bool(body[0])
                    break
        finally:
            self._opener.shutdown(wait=drain, cancel_futures=not drain)
            self.inner.shutdown(drain=drain)
            self.conn.close()

    def _dispatch_cold_open(self, name: str) -> None:
        try:
            self._lane(name)
        except Exception:
            # A bad preopen name surfaces on the first request instead.
            pass


def worker_main(child_sock: socket.socket, registry, spec: WorkerSpec,
                close_fds: Iterable[int] = ()) -> None:
    """Child-process entry point (run via ``multiprocessing.Process``).

    ``close_fds`` are parent-side descriptors this child inherited over the
    fork: they are closed first so a sibling worker's death is visible to
    the frontend as EOF (an inherited duplicate would keep the socket open).

    Example::

        worker_main(child_sock, registry, WorkerSpec(preopen=("redwine/ours",)))
    """
    own = child_sock.fileno()
    for fd in close_fds:
        if fd == own:
            continue  # a recycled number could alias our own socket
        try:
            os.close(fd)
        except OSError:
            pass
    _WorkerRuntime(FrameConnection(child_sock), registry, spec).run()


# --------------------------------------------------------------------------- #
# Parent side
# --------------------------------------------------------------------------- #
class _Pending:
    """One in-flight call: its future plus what a restart must resend."""

    __slots__ = ("future", "kind", "payload", "retries")

    def __init__(self, future: Future, kind: int, payload) -> None:
        self.future = future
        self.kind = kind
        self.payload = payload  # None = not resubmittable (control calls)
        self.retries = 0  # crashes survived; bounds poison-request replays


class WorkerHandle:
    """The frontend's view of one live worker process.

    Owns the framed connection, the reader thread that matches responses to
    futures by request id, and crash detection: when the connection reaches
    EOF (worker exited or was killed) every pending call is handed to the
    ``on_death`` callback, which the frontend uses to restart the worker
    and resubmit the idempotent predict requests — callers' futures resolve
    as if nothing happened.

    Example::

        handle = WorkerHandle(registry, WorkerSpec(), index=0,
                              on_death=server._worker_died)
        future = handle.call(MSG_REQUEST, ("redwine/ours", "ids", rows),
                             resubmit=True)
        future.result()
    """

    def __init__(
        self,
        registry,
        spec: WorkerSpec,
        index: int,
        on_death: Callable[["WorkerHandle", Dict[int, _Pending]], None],
        sibling_conns: Iterable[FrameConnection] = (),
    ) -> None:
        self.index = index
        self.spec = spec
        self.on_death = on_death
        self.ready = False
        self.last_pong: Optional[float] = None
        self.draining = False
        self._dead = False
        self._lock = threading.Lock()
        self._pending: Dict[int, _Pending] = {}
        self._req_ids = count(1)

        ctx = _mp_context()
        self.conn, child_sock = connection_pair()
        if ctx.get_start_method() == "fork":
            # Parent-side fds the child inherits over the fork and must close
            # so a sibling's death is visible as EOF.  Filenos are resolved
            # at the last moment — conns closed since the caller collected
            # them report -1 and drop out.
            fds = {conn.fileno for conn in sibling_conns} | {self.conn.fileno}
            fds = tuple(fd for fd in fds if fd >= 0)
        else:  # spawn pickles fresh sockets; inherited-fd hygiene is moot
            fds = ()
        self.process = ctx.Process(
            target=worker_main,
            args=(child_sock, registry, spec, fds),
            name=f"repro-serve-worker-{index}",
            daemon=True,
        )
        self.process.start()
        child_sock.close()
        self.pid = self.process.pid
        self.spawned = time.monotonic()
        self._reader = threading.Thread(
            target=self._read_loop, name=f"worker-reader-{index}", daemon=True
        )
        self._reader.start()

    # ------------------------------------------------------------------ #
    @property
    def alive(self) -> bool:
        return not self._dead and self.process.is_alive()

    def call(self, kind: int, payload: tuple, *, resubmit: bool = False) -> Future:
        """Send one framed call; returns the future its response resolves.

        ``resubmit=True`` marks the call safe to replay on a replacement
        worker (predict requests: pure functions of their rows).  A call on
        a dead handle raises :class:`WorkerCrashed` immediately so the
        router can retry on the replacement.
        """
        future: Future = Future()
        with self._lock:
            if self._dead:
                raise WorkerCrashed(f"worker {self.index} (pid {self.pid}) is down")
            req_id = next(self._req_ids)
            self._pending[req_id] = _Pending(
                future, kind, payload if resubmit else None
            )
        try:
            self.conn.send(kind, (req_id,) + payload)
        except OSError:
            # The reader may not have observed the EOF yet; force the death
            # path so this call is resubmitted (or failed) exactly once.
            self._mark_dead()
        return future

    def resubmit(self, pending: _Pending) -> None:
        """Re-send one pending call from a dead sibling onto this worker.

        The caller's future rides along untouched: it resolves when the
        replayed request completes here (or is handed on again if this
        worker dies too).
        """
        with self._lock:
            if self._dead:
                raise WorkerCrashed(f"worker {self.index} (pid {self.pid}) is down")
            new_id = next(self._req_ids)
            self._pending[new_id] = pending
        try:
            self.conn.send(pending.kind, (new_id,) + pending.payload)
        except OSError:
            self._mark_dead()

    def ping(self) -> Future:
        """Heartbeat; the response marks the handle ready and stamps the pong."""
        future = self.call(MSG_CONTROL, ("ping", None))
        future.add_done_callback(self._note_pong)
        return future

    def _note_pong(self, future: Future) -> None:
        if future.exception() is None:
            self.ready = True
            self.last_pong = time.monotonic()

    # ------------------------------------------------------------------ #
    def _read_loop(self) -> None:
        try:
            while True:
                message = self.conn.recv()
                if message is None:
                    break
                kind, body = message
                if kind == MSG_RESPONSE:
                    req_id, payload = body
                    pending = self._take(req_id)
                    if pending is not None and not pending.future.done():
                        self.ready = True
                        pending.future.set_result(payload)
                elif kind == MSG_ERROR:
                    req_id, error_kind, text = body
                    pending = self._take(req_id)
                    if pending is not None and not pending.future.done():
                        pending.future.set_exception(
                            _error_to_exception(error_kind, text)
                        )
        except (TransportError, OSError):
            pass
        self._mark_dead()

    def _take(self, req_id: int) -> Optional[_Pending]:
        with self._lock:
            return self._pending.pop(req_id, None)

    def _mark_dead(self) -> None:
        with self._lock:
            if self._dead:
                return
            self._dead = True
            pending, self._pending = self._pending, {}
        self.conn.close()
        self.on_death(self, pending)

    # ------------------------------------------------------------------ #
    def shutdown(self, drain: bool = True) -> None:
        """Ask the worker to drain (or fail fast) and exit; non-blocking."""
        self.draining = True
        try:
            self.conn.send(MSG_SHUTDOWN, (drain,))
        except OSError:
            pass

    def join(self, timeout: Optional[float] = None) -> bool:
        self.process.join(timeout=timeout)
        return not self.process.is_alive()

    def stop(self, timeout: float = 5.0) -> None:
        """Drain, then escalate to SIGTERM/SIGKILL if the worker lingers."""
        self.shutdown(drain=True)
        if not self.join(timeout=timeout):
            self.process.terminate()
            if not self.join(timeout=1.0):
                self.process.kill()
                self.join(timeout=1.0)
        self.conn.close()


def _error_to_exception(kind: str, text: str) -> BaseException:
    """Map a wire error kind back to the exception the caller expects."""
    from repro.serve.server import ServerClosed

    if kind == ERROR_VALUE:
        return ValueError(text)
    if kind == ERROR_CLOSED:
        return ServerClosed(text)
    return RuntimeError(text)
