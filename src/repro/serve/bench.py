"""Serving-throughput benchmark: micro-batching vs one-request-at-a-time.

Measures the request-facing layer end to end — validation, the micro-batch
queue, the vectorized ``run_batch`` kernel, stats — and records the
trajectory to ``BENCH_serving.json``:

* **serial** — single predict requests issued strictly one at a time (each
  waits for its answer before the next is submitted): the no-coalescing
  baseline, dominated by per-request queue handoff and a batch-of-1 kernel;
* **batched** — the same number of single-sample requests offered
  concurrently from several client threads at each ``max_batch_size``: the
  requests coalesce into few vectorized micro-batches, which is the whole
  point of the subsystem.  Recorded per batch size with the measured
  occupancy, so throughput-vs-batch-size is tracked PR over PR;
* a **bit-exactness** check that the served class ids equal the design's
  direct ``run_batch`` answers on the same rows;
* **multi_worker** — the frontend/worker fleet vs the single-process
  oracle on a multi-model mix: closed-loop aggregate throughput (the
  ``workers=4`` speedup claim), open-loop sustained and bursty SLO runs
  with p50/p99/p999 tails, the saturation knee, and bit-exactness of the
  fleet against the ``workers=0`` path.

Entry points: ``python scripts/bench_serving.py`` (writes the JSON;
``--compare --baseline`` diffs instead) and
``pytest benchmarks/test_perf_serving.py`` (asserts the floors).

Example::

    results = run_serving_benchmark(n_requests=2048)
    results["best"]["speedup_vs_serial"]      # >= 5.0 on any healthy host
    fleet = run_multi_worker_benchmark(workers=4)
    fleet["bit_identical_to_single_process"]  # always True
"""

from __future__ import annotations

import json
import os
import platform
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.benchcompare import (
    BenchmarkBaselineError,
    bad_input_exit,
    compare_benchmarks,
    load_baseline,
)
from repro.core.design_flow import fast_config
from repro.core.flow_executor import run_flow_cached
from repro.core.paths import bench_output_path
from repro.serve.loadgen import (
    ModelTraffic,
    find_saturation,
    run_closed_loop,
    run_open_loop,
)
from repro.serve.registry import ModelRegistry
from repro.serve.server import ModelServer

#: Default location of the recorded results (repository root).
DEFAULT_OUTPUT = bench_output_path("BENCH_serving.json")

#: Micro-batch ceilings the throughput sweep measures.
DEFAULT_BATCH_SIZES = (8, 32, 256)

#: Client threads offering the concurrent load.
DEFAULT_CLIENT_THREADS = 4

#: The >=4-model mix the multi-worker section serves (one lane per worker
#: at the default ``workers=4`` / ``lanes_per_worker=1``).
DEFAULT_FLEET_DATASETS = ("redwine", "whitewine", "cardio", "dermatology")

#: Worker processes in the default fleet measurement.
DEFAULT_WORKERS = 4


def _effective_cpus() -> float:
    """CPUs this process may actually run on (affinity-aware)."""
    if hasattr(os, "sched_getaffinity"):
        return float(len(os.sched_getaffinity(0)))
    return float(os.cpu_count() or 1)


def wait_ready(server: ModelServer, timeout_s: float = 30.0) -> None:
    """Poll :attr:`ModelServer.ready` until the fleet can serve.

    The readiness handshake (every worker alive and heartbeat-answered) is
    what the bench scripts poll instead of sleeping an arbitrary interval.

    Example::

        with ModelServer(registry, workers=4) as server:
            wait_ready(server)
    """
    deadline = time.monotonic() + timeout_s
    while not server.ready:
        if time.monotonic() >= deadline:
            raise RuntimeError(
                f"server not ready within {timeout_s:.0f}s "
                f"({server.workers} workers)"
            )
        time.sleep(0.02)


def _request_rows(X: np.ndarray, n_requests: int) -> np.ndarray:
    """Cycle the test split into ``n_requests`` single-sample rows."""
    reps = int(np.ceil(n_requests / max(X.shape[0], 1)))
    return np.tile(X, (reps, 1))[:n_requests]


def _measure_serial(server: ModelServer, name: str, rows: np.ndarray) -> Dict:
    """One-request-at-a-time baseline over the full serving stack."""
    start = time.perf_counter()
    for row in rows:
        server.predict(name, row)
    elapsed = time.perf_counter() - start
    return {
        "n_requests": int(rows.shape[0]),
        "seconds": elapsed,
        "requests_per_s": rows.shape[0] / elapsed,
    }


def _measure_batched(
    server: ModelServer,
    name: str,
    rows: np.ndarray,
    n_threads: int,
    burst: int = 64,
) -> Dict:
    """Concurrent single-sample load: ``n_threads`` clients, all rows.

    Each client offers its share of the traffic in bursts of ``burst``
    single-sample requests (every row keeps its own future), mimicking a
    connection handler that drains its accept queue into the server.
    """
    futures: List = [None] * rows.shape[0]
    chunks = np.array_split(np.arange(rows.shape[0]), n_threads)

    def client(indices: np.ndarray) -> None:
        for lo in range(0, indices.size, burst):
            window = indices[lo : lo + burst]
            for i, future in zip(
                window, server.submit_many(name, rows[window[0] : window[-1] + 1])
            ):
                futures[i] = future

    threads = [
        threading.Thread(target=client, args=(chunk,), daemon=True)
        for chunk in chunks
        if chunk.size
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    ids = np.asarray([future.result()[0] for future in futures], dtype=np.int64)
    elapsed = time.perf_counter() - start

    snapshot = server.stats()["models"][name]
    return {
        "n_requests": int(rows.shape[0]),
        "client_threads": n_threads,
        "seconds": elapsed,
        "requests_per_s": rows.shape[0] / elapsed,
        "mean_batch_size": snapshot["mean_batch_size"],
        "batch_occupancy": snapshot["batch_occupancy"],
        "ids": ids,
    }


def run_serving_benchmark(
    dataset: str = "redwine",
    kind: str = "ours",
    n_requests: int = 4096,
    n_serial: int = 512,
    batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
    client_threads: int = DEFAULT_CLIENT_THREADS,
    repeats: int = 3,
) -> Dict:
    """Benchmark the serving subsystem on one flow-trained model.

    The model is trained (or loaded) once through the standard flow path;
    every configuration then serves real test-split feature vectors.

    Parameters
    ----------
    dataset / kind:
        Which Table I design to serve (fast flow configuration).
    n_requests / n_serial:
        Concurrent requests per batched measurement and serial baseline
        requests (the serial path is slow by construction, so fewer).
    batch_sizes:
        ``max_batch_size`` values of the throughput sweep.
    client_threads:
        Concurrent client threads offering the batched load.
    repeats:
        Each batched point is measured ``repeats`` times and the best run
        kept (thread-scheduling noise otherwise dominates single runs);
        bit-exactness is asserted on *every* run, not just the best.

    Example::

        results = run_serving_benchmark(n_requests=2048)
        results["best"]["speedup_vs_serial"]     # >= 5 on any healthy host
        results["bit_identical_to_run_batch"]    # always True
    """
    config = fast_config()
    # cache=False keeps the benchmark hermetic (no writes to the user cache);
    # the in-process flow cache still makes the registry load instant.
    result = run_flow_cached(dataset, kind, config, cache=False)
    name = f"{dataset}/{kind}"
    registry = ModelRegistry(config=config, cache=False)
    rows = _request_rows(result.split.X_test, n_requests)

    # Ground truth straight off the vectorized datapath simulator.
    expected_ids = np.asarray(result.design.simulate_batch(rows), dtype=np.int64)

    with ModelServer(registry, max_batch_size=1, max_latency_ms=0.0) as serial_server:
        serial = _measure_serial(serial_server, name, rows[:n_serial])

    batched: List[Dict] = []
    bit_identical = True
    for max_batch_size in batch_sizes:
        best_point: Optional[Dict] = None
        for _ in range(max(repeats, 1)):
            with ModelServer(
                registry, max_batch_size=max_batch_size, max_latency_ms=0.5
            ) as server:
                measured = _measure_batched(server, name, rows, client_threads)
            ids = measured.pop("ids")
            bit_identical = bit_identical and bool(np.array_equal(ids, expected_ids))
            if best_point is None or measured["requests_per_s"] > best_point["requests_per_s"]:
                best_point = measured
        best_point["max_batch_size"] = int(max_batch_size)
        best_point["speedup_vs_serial"] = (
            best_point["requests_per_s"] / serial["requests_per_s"]
        )
        batched.append(best_point)

    best = max(batched, key=lambda m: m["requests_per_s"])
    return {
        "benchmark": "serving",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": float(os.cpu_count() or 1),
        "model": name,
        "backend": registry.get(name).backend,
        "serial": serial,
        "batched": batched,
        "best": {
            "max_batch_size": best["max_batch_size"],
            "requests_per_s": best["requests_per_s"],
            "speedup_vs_serial": best["speedup_vs_serial"],
        },
        "bit_identical_to_run_batch": bit_identical,
    }


def run_multi_worker_benchmark(
    datasets: Sequence[str] = DEFAULT_FLEET_DATASETS,
    kind: str = "ours",
    workers: int = DEFAULT_WORKERS,
    lanes_per_worker: int = 1,
    client_threads: int = DEFAULT_CLIENT_THREADS,
    requests_per_client: int = 1024,
    burst: int = 64,
    slo_duration_s: float = 1.5,
    seed: int = 0,
) -> Dict:
    """Fleet vs single-process oracle on a multi-model mix.

    Every dataset's design is trained (fast flow configuration) in this
    process first, so the forked workers inherit the warm flow cache and
    boot without retraining.  The same closed-loop load then runs against
    a ``workers=0`` server and a ``workers=N`` fleet; the fleet adds
    open-loop sustained/bursty SLO runs (rates anchored to its measured
    capacity) and a saturation ramp.

    Bit-exactness is structural — a worker embeds the ``workers=0`` server
    — and verified anyway: both servers' answers are compared against the
    designs' direct ``simulate_batch`` ids.

    Example::

        fleet = run_multi_worker_benchmark(workers=4, lanes_per_worker=1)
        fleet["speedup_vs_single_process"]      # >= 2.5 on a >=4-core host
        fleet["slo"]["bursty"]["latency_p999_ms"]
    """
    config = fast_config()
    registry = ModelRegistry(config=config, cache=False)
    mix: List[ModelTraffic] = []
    expected: Dict[str, np.ndarray] = {}
    for dataset in datasets:
        result = run_flow_cached(dataset, kind, config, cache=False)
        name = f"{dataset}/{kind}"
        rows = np.asarray(result.split.X_test, dtype=float)
        mix.append(ModelTraffic(name, rows))
        expected[name] = np.asarray(result.design.simulate_batch(rows), np.int64)

    def bit_exact(server: ModelServer) -> bool:
        for traffic in mix:
            answer = server.predict_many(traffic.name, traffic.rows)
            got = np.asarray(answer["class_ids"], dtype=np.int64)
            if not np.array_equal(got, expected[traffic.name]):
                return False
        return True

    def serve_all(server: ModelServer) -> None:
        for traffic in mix:
            server.open_lane(traffic.name)

    with ModelServer(registry, max_latency_ms=0.5) as oracle:
        serve_all(oracle)
        oracle_exact = bit_exact(oracle)
        single = run_closed_loop(
            oracle,
            mix,
            n_clients=client_threads,
            requests_per_client=requests_per_client,
            burst=burst,
            seed=seed,
        )

    with ModelServer(
        registry,
        max_latency_ms=0.5,
        workers=workers,
        lanes_per_worker=lanes_per_worker,
    ) as fleet:
        wait_ready(fleet)
        serve_all(fleet)
        fleet_exact = bit_exact(fleet)
        closed = run_closed_loop(
            fleet,
            mix,
            n_clients=client_threads,
            requests_per_client=requests_per_client,
            burst=burst,
            seed=seed,
        )
        # The open-loop knee is far below the burst-amortized closed-loop
        # number (one frame per request), so find it first and anchor the
        # SLO runs at half of it: tails then reflect service jitter, not a
        # saturated queue growing without bound.
        saturation = find_saturation(
            fleet,
            mix,
            start_rate=max(0.05 * closed.achieved_rate, 200.0),
            duration_s=0.4,
            max_steps=7,
            seed=seed,
        )
        slo_rate = max(0.5 * saturation["saturation_rate_per_s"], 100.0)
        sustained = run_open_loop(
            fleet, mix, rate=slo_rate, duration_s=slo_duration_s, seed=seed
        )
        bursty = run_open_loop(
            fleet,
            mix,
            rate=slo_rate,
            duration_s=slo_duration_s,
            pattern="bursty",
            seed=seed,
        )
        fleet_stats = fleet.stats()

    return {
        "datasets": list(datasets),
        "kind": kind,
        "workers": int(workers),
        "lanes_per_worker": int(lanes_per_worker),
        "client_threads": int(client_threads),
        "effective_cpus": _effective_cpus(),
        "single_process": {
            "aggregate_requests_per_s": single.achieved_rate,
            "n_requests": single.n_requests,
            "n_errors": single.n_errors,
        },
        "fleet": {
            "aggregate_requests_per_s": closed.achieved_rate,
            "n_requests": closed.n_requests,
            "n_errors": closed.n_errors,
            "workers_alive": sum(
                1 for w in fleet_stats["workers"] if w["alive"]
            ),
            "worker_restarts": sum(w["restarts"] for w in fleet_stats["workers"]),
        },
        "speedup_vs_single_process": (
            closed.achieved_rate / max(single.achieved_rate, 1e-9)
        ),
        "bit_identical_to_single_process": bool(oracle_exact and fleet_exact),
        "slo": {
            "sustained": sustained.to_json(),
            "bursty": bursty.to_json(),
        },
        "saturation": saturation,
    }


def write_benchmark(results: Dict, path: Union[str, Path, None] = None) -> Path:
    """Serialize a results document to ``BENCH_serving.json``.

    Example::

        write_benchmark(run_serving_benchmark())   # repo-root JSON artifact
    """
    path = Path(path) if path is not None else DEFAULT_OUTPUT
    path.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    return path


def main(argv: Optional[List[str]] = None) -> int:
    """CLI used by ``scripts/bench_serving.py``."""
    import argparse

    parser = argparse.ArgumentParser(
        description="Measure serving throughput and record BENCH_serving.json."
    )
    parser.add_argument("--dataset", default="redwine", help="dataset to serve")
    parser.add_argument(
        "--kind", default="ours", help="model kind to serve (Table I row family)"
    )
    parser.add_argument(
        "--requests", type=int, default=4096, help="concurrent requests per sweep point"
    )
    parser.add_argument(
        "--batch-sizes",
        type=int,
        nargs="+",
        default=list(DEFAULT_BATCH_SIZES),
        help="max_batch_size values to sweep",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=DEFAULT_WORKERS,
        help="worker processes in the multi-worker fleet measurement "
        "(0 skips the fleet section entirely)",
    )
    parser.add_argument(
        "--lanes-per-worker",
        type=int,
        default=1,
        help="soft cap on model lanes per worker in the fleet measurement",
    )
    parser.add_argument(
        "--fleet-datasets",
        nargs="+",
        default=list(DEFAULT_FLEET_DATASETS),
        help="datasets in the fleet's multi-model mix",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"output JSON path (default: {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="diff a fresh run against a baseline JSON instead of writing; "
        "prints per-section regressions, exits 0 when the baseline is usable "
        "(trend signal only) and 2 when it is missing or malformed",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_OUTPUT,
        help="baseline JSON for --compare "
        "(default: the committed BENCH_serving.json)",
    )
    args = parser.parse_args(argv)
    baseline = None
    if args.compare:
        # Validate before the (expensive) fresh run: a missing or malformed
        # baseline is a usage error, reported in one line, exit code 2.
        try:
            baseline = load_baseline(args.baseline)
        except BenchmarkBaselineError as error:
            return bad_input_exit("bench_serving --compare", error)
    results = run_serving_benchmark(
        dataset=args.dataset,
        kind=args.kind,
        n_requests=args.requests,
        batch_sizes=args.batch_sizes,
    )
    if args.workers > 0:
        results["multi_worker"] = run_multi_worker_benchmark(
            datasets=args.fleet_datasets,
            kind=args.kind,
            workers=args.workers,
            lanes_per_worker=args.lanes_per_worker,
        )
    if args.compare:
        compare_benchmarks(results, baseline)
        return 0
    path = write_benchmark(results, args.output)
    print(
        f"serial  {results['serial']['requests_per_s']:10.0f} req/s "
        f"(one request at a time)"
    )
    for point in results["batched"]:
        print(
            f"batched {point['requests_per_s']:10.0f} req/s "
            f"(max_batch_size={point['max_batch_size']}, "
            f"occupancy={point['batch_occupancy']:.2f}, "
            f"{point['speedup_vs_serial']:.1f}x vs serial)"
        )
    print(
        "bit-identical to run_batch: "
        f"{results['bit_identical_to_run_batch']}"
    )
    if "multi_worker" in results:
        fleet = results["multi_worker"]
        print(
            f"fleet   {fleet['fleet']['aggregate_requests_per_s']:10.0f} req/s "
            f"({fleet['workers']} workers, "
            f"{len(fleet['datasets'])}-model mix, "
            f"{fleet['speedup_vs_single_process']:.2f}x vs single process "
            f"on {fleet['effective_cpus']:.0f} CPUs)"
        )
        for pattern in ("sustained", "bursty"):
            slo = fleet["slo"][pattern]
            print(
                f"slo/{pattern:9s} offered {slo['offered_rate_per_s']:7.0f}/s "
                f"p50 {slo['latency_p50_ms']:.2f}ms "
                f"p99 {slo['latency_p99_ms']:.2f}ms "
                f"p999 {slo['latency_p999_ms']:.2f}ms"
            )
        print(
            "fleet bit-identical to single process: "
            f"{fleet['bit_identical_to_single_process']}"
        )
    print(f"results written to {path}")
    return 0
