"""Length-prefixed binary framing between the frontend and its workers.

The frontend/worker split (see :mod:`repro.serve.worker`) speaks a tiny
binary protocol over a ``socketpair``: every message is one *frame* — a
5-byte header (one message-kind byte plus a big-endian ``uint32`` payload
length) followed by the payload bytes.  Payloads are pickled Python tuples
(the channel is private between a parent and the worker processes it
forked, so pickle's trust model is the process boundary's own).

Frame kinds
-----------
* ``MSG_REQUEST`` — ``(req_id, model_name, mode, rows)``: predict work.
  ``mode`` selects the response shape (``"single"``/``"bulk"`` answer the
  HTTP-style dicts, ``"ids"`` a raw class-id array, ``"ids_burst"`` one id
  array for rows submitted as independent single-sample requests).
* ``MSG_CONTROL`` — ``(req_id, op, arg)``: ``"ping"`` (heartbeat),
  ``"stats"``, ``"models"``, ``"open_lane"``.
* ``MSG_RESPONSE`` / ``MSG_ERROR`` — ``(req_id, payload)`` /
  ``(req_id, error_kind, message)``: the answer to a request or control
  frame, matched by ``req_id`` (responses may arrive out of order; the
  worker answers as micro-batches complete).
* ``MSG_SHUTDOWN`` — ``(drain,)``: one-way; the worker drains (or fails
  fast), closes its end and exits.  The resulting EOF is the parent's
  completion signal.

Crash detection is framing-level: a worker that dies mid-frame or closes
its socket surfaces as ``None`` from :meth:`FrameConnection.recv` (clean
EOF) or :class:`TransportError` (torn frame), and the frontend reacts by
restarting the worker and resubmitting its pending requests.

Example::

    parent, child = socket.socketpair()
    conn = FrameConnection(parent)
    conn.send(MSG_CONTROL, (1, "ping", None))
    kind, payload = FrameConnection(child).recv()   # worker side
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
from typing import Any, Optional, Tuple

#: Frame header: one kind byte + big-endian uint32 payload length.
_HEADER = struct.Struct("!BI")

#: Hard ceiling on one frame's payload (a torn header otherwise makes the
#: receiver try to allocate gigabytes before noticing the stream is gone).
MAX_FRAME_BYTES = 256 << 20

MSG_REQUEST = 1
MSG_CONTROL = 2
MSG_RESPONSE = 3
MSG_ERROR = 4
MSG_SHUTDOWN = 5

#: Error kinds carried by ``MSG_ERROR`` (mapped back to exception types on
#: the frontend: ``value`` -> ValueError, ``closed`` -> ServerClosed,
#: anything else -> RuntimeError).
ERROR_VALUE = "value"
ERROR_CLOSED = "closed"
ERROR_INTERNAL = "internal"


class TransportError(RuntimeError):
    """A torn or malformed frame (the peer died mid-message).

    Example::

        try:
            conn.recv()
        except TransportError:
            ...  # treat exactly like EOF: the worker is gone
    """


class WorkerCrashed(RuntimeError):
    """Raised to callers whose worker died before answering.

    Predict requests are resubmitted transparently on the restarted worker
    (the kernels are pure functions of their rows), so user-visible
    ``WorkerCrashed`` is reserved for non-idempotent bookkeeping calls and
    for workers that died with restarts disabled.

    Example::

        try:
            handle.call(MSG_CONTROL, ("stats", None)).result()
        except WorkerCrashed:
            ...  # skip this worker in the aggregate view
    """


def encode(obj: Any) -> bytes:
    """Pickle one frame payload (highest protocol: zero-copy numpy buffers).

    Example::

        >>> import pickle
        >>> pickle.loads(encode((1, "ping", None)))
        (1, 'ping', None)
    """
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def decode(payload: bytes) -> Any:
    """Unpickle one frame payload (inverse of :func:`encode`)."""
    return pickle.loads(payload)


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes; ``None`` on clean EOF at a frame boundary.

    EOF *inside* a frame raises :class:`TransportError` — the peer died
    mid-message and the stream cannot be resynchronized.
    """
    chunks = []
    remaining = n
    while remaining:
        try:
            chunk = sock.recv(min(remaining, 1 << 20))
        except (ConnectionResetError, BrokenPipeError):
            chunk = b""
        if not chunk:
            if remaining == n:
                return None
            raise TransportError(
                f"stream ended {remaining} bytes short of a {n}-byte read"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class FrameConnection:
    """One framed, thread-safe end of a frontend<->worker socket.

    Sends are serialized by a lock (micro-batch completion callbacks answer
    from several worker threads); receives are meant to be driven by a
    single reader loop per connection.

    Example::

        parent_sock, child_sock = socket.socketpair()
        conn = FrameConnection(parent_sock)
        conn.send(MSG_SHUTDOWN, (True,))
        conn.close()
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._send_lock = threading.Lock()
        self._closed = False

    @property
    def fileno(self) -> int:
        return self._sock.fileno()

    def set_timeout(self, timeout: Optional[float]) -> None:
        """Set a socket-level timeout for subsequent sends/receives.

        ``None`` restores blocking mode.  A receive that trips the timeout
        raises ``socket.timeout`` (an ``OSError``) — and because it may have
        consumed part of a frame, the stream can no longer be resynchronized:
        callers must treat a timed-out connection as dead (close it, kill the
        peer), exactly as they would a :class:`TransportError`.

        Example::

            conn.set_timeout(5.0)      # per-job deadline
            conn.set_timeout(None)     # back to blocking
        """
        self._sock.settimeout(timeout)

    # ------------------------------------------------------------------ #
    def send(self, kind: int, obj: Any) -> None:
        """Frame and send one message; raises ``OSError`` if the peer died."""
        payload = encode(obj)
        if len(payload) > MAX_FRAME_BYTES:
            raise ValueError(
                f"frame payload of {len(payload)} bytes exceeds the "
                f"{MAX_FRAME_BYTES}-byte transport ceiling"
            )
        frame = _HEADER.pack(kind, len(payload)) + payload
        with self._send_lock:
            if self._closed:
                raise OSError("connection is closed")
            self._sock.sendall(frame)

    def recv(self) -> Optional[Tuple[int, Any]]:
        """Receive one ``(kind, payload)`` message; ``None`` on clean EOF."""
        header = _recv_exact(self._sock, _HEADER.size)
        if header is None:
            return None
        kind, length = _HEADER.unpack(header)
        if length > MAX_FRAME_BYTES:
            raise TransportError(
                f"frame announces {length} bytes (ceiling {MAX_FRAME_BYTES}); "
                "stream is corrupt"
            )
        payload = _recv_exact(self._sock, length) if length else b""
        if length and payload is None:
            raise TransportError("stream ended between a header and its payload")
        return kind, decode(payload) if length else None

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Close the underlying socket; idempotent."""
        with self._send_lock:
            if self._closed:
                return
            self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()


def connection_pair() -> Tuple[FrameConnection, socket.socket]:
    """A framed parent end plus the raw child socket for one new worker.

    The child's end stays a raw socket until after the fork (the worker
    wraps it itself), so the parent can close its copy without touching
    shared framing state.

    Example::

        parent_conn, child_sock = connection_pair()
        # fork; child: FrameConnection(child_sock); parent: child_sock.close()
    """
    parent_sock, child_sock = socket.socketpair()
    return FrameConnection(parent_sock), child_sock
