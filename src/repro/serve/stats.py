"""Per-model serving statistics: request rates, batch occupancy, latency.

Every :class:`~repro.serve.server.ModelServer` keeps one
:class:`StatsRecorder` per served model.  The recorder is written from two
places — the request path (per-request latency) and the micro-batcher worker
(per-micro-batch size) — and read by the ``/stats`` HTTP route, so every
operation is guarded by one lock and a snapshot is a plain JSON-ready dict.

Example::

    stats = StatsRecorder(max_batch_size=8)
    stats.observe_request(latency_s=0.004, n_samples=1)
    stats.observe_batch(n_samples=6)
    snap = stats.snapshot()
    snap["requests_total"], snap["batch_occupancy"]
    (1, 0.75)
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, Optional

#: How many recent request latencies the percentile reservoir keeps.
LATENCY_RESERVOIR_SIZE = 4096


def percentile(sorted_values, fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted sequence.

    Example::

        >>> percentile([1.0, 2.0, 3.0, 4.0], 0.5)
        2.0
    """
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, max(0, int(fraction * len(sorted_values))))
    return float(sorted_values[rank])


class StatsRecorder:
    """Thread-safe accumulator of one model's serving statistics.

    Parameters
    ----------
    max_batch_size:
        The batcher's configured ceiling; batch occupancy is reported as
        ``mean micro-batch size / max_batch_size``.
    reservoir_size:
        How many recent per-request latencies feed the p50/p99 estimates.

    Example::

        stats = StatsRecorder(max_batch_size=256)
        stats.observe_request(latency_s=0.002)
        stats.snapshot()["latency_p50_ms"]    # 2.0
    """

    def __init__(
        self,
        max_batch_size: int,
        reservoir_size: int = LATENCY_RESERVOIR_SIZE,
    ) -> None:
        self.max_batch_size = int(max_batch_size)
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self._requests_total = 0
        self._samples_total = 0
        self._errors_total = 0
        self._batches_total = 0
        self._batched_samples_total = 0
        self._latencies: Deque[float] = deque(maxlen=reservoir_size)

    # ------------------------------------------------------------------ #
    def observe_request(self, latency_s: float, n_samples: int = 1) -> None:
        """Record one completed predict request (single or bulk)."""
        with self._lock:
            self._requests_total += 1
            self._samples_total += int(n_samples)
            self._latencies.append(float(latency_s))

    def observe_error(self) -> None:
        """Record a request that failed (bad input, shutdown race, ...)."""
        with self._lock:
            self._errors_total += 1

    def observe_batch(self, n_samples: int) -> None:
        """Record one micro-batch flushed onto the vectorized hot path."""
        with self._lock:
            self._batches_total += 1
            self._batched_samples_total += int(n_samples)

    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, float]:
        """A JSON-serializable view of everything recorded so far."""
        with self._lock:
            elapsed = max(time.monotonic() - self._started, 1e-9)
            latencies = sorted(self._latencies)
            mean_batch: Optional[float] = None
            if self._batches_total:
                mean_batch = self._batched_samples_total / self._batches_total
            return {
                "requests_total": self._requests_total,
                "samples_total": self._samples_total,
                "errors_total": self._errors_total,
                "uptime_s": elapsed,
                "requests_per_s": self._requests_total / elapsed,
                "samples_per_s": self._samples_total / elapsed,
                "batches_total": self._batches_total,
                "mean_batch_size": mean_batch if mean_batch is not None else 0.0,
                "batch_occupancy": (
                    (mean_batch / self.max_batch_size)
                    if mean_batch is not None and self.max_batch_size
                    else 0.0
                ),
                "latency_p50_ms": 1000.0 * percentile(latencies, 0.50),
                "latency_p99_ms": 1000.0 * percentile(latencies, 0.99),
                "latency_samples": len(latencies),
            }
