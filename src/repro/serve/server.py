"""The request-facing serving core: one ModelServer, many models.

A :class:`ModelServer` owns a :class:`~repro.serve.registry.ModelRegistry`
and, per served model, one :class:`~repro.serve.batching.MicroBatcher`
(feeding that model's vectorized ``run_batch`` kernel) plus one
:class:`~repro.serve.stats.StatsRecorder`.  Both the HTTP endpoint and the
in-process client are thin shims over this class, so every transport shares
the same batching, stats and shutdown semantics.

Example::

    server = ModelServer(ModelRegistry(config=fast_config()))
    out = server.predict("redwine/ours", [0.5] * 11)   # 11 redwine features
    out["prediction"], out["class_id"]
    server.stats()["models"]["redwine/ours"]["requests_total"]
    server.shutdown()          # graceful: drains in-flight requests
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from typing import Dict, List, Sequence, Union

import numpy as np

from repro.serve.batching import BatcherClosed, MicroBatcher
from repro.serve.model import ServedModel
from repro.serve.registry import ModelRegistry
from repro.serve.stats import StatsRecorder

#: Default coalescing ceiling: enough rows that a full micro-batch amortizes
#: the per-call overhead down to noise, small enough to keep latency tails low.
DEFAULT_MAX_BATCH_SIZE = 256
#: Default straggler window in milliseconds (0 = flush as soon as drained).
DEFAULT_MAX_LATENCY_MS = 2.0


class ServerClosed(RuntimeError):
    """Raised for requests submitted after :meth:`ModelServer.shutdown`.

    Example::

        server.shutdown()
        try:
            server.predict(name, features)
        except ServerClosed:
            ...  # the HTTP layer maps this to a 503 response
    """


class _ModelLane:
    """Everything one served model owns inside the server (batcher + stats)."""

    def __init__(self, model: ServedModel, max_batch_size: int, max_latency_ms: float):
        self.model = model
        self.stats = StatsRecorder(max_batch_size=max_batch_size)
        self.batcher = MicroBatcher(
            # Rows are validated at submit time; the worker runs the
            # unvalidated kernel straight onto run_batch.
            fn=model.kernel,
            max_batch_size=max_batch_size,
            max_latency_ms=max_latency_ms,
            on_batch=self.stats.observe_batch,
            name=model.name,
        )


class ModelServer:
    """Batch inference server over the vectorized design simulators.

    Parameters
    ----------
    registry:
        Resolves model names to loaded designs (see
        :class:`~repro.serve.registry.ModelRegistry`).
    max_batch_size / max_latency_ms:
        Micro-batching knobs applied to every model lane (see
        :class:`~repro.serve.batching.MicroBatcher`).

    Example::

        registry = ModelRegistry(config=fast_config())
        with ModelServer(registry, max_batch_size=128) as server:
            single = server.predict("redwine/ours", x)          # one sample
            bulk = server.predict_many("redwine/ours", X_test)  # micro-batched
    """

    def __init__(
        self,
        registry: ModelRegistry,
        max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
        max_latency_ms: float = DEFAULT_MAX_LATENCY_MS,
    ) -> None:
        self.registry = registry
        self.max_batch_size = int(max_batch_size)
        self.max_latency_ms = float(max_latency_ms)
        self._lock = threading.Lock()
        self._lanes: Dict[str, _ModelLane] = {}
        self._closed = False
        self._started = time.monotonic()

    # ------------------------------------------------------------------ #
    # Model management
    # ------------------------------------------------------------------ #
    def lane(self, name: str) -> _ModelLane:
        """The (batcher, stats) lane of one model, created on first use."""
        # Fast path: dict reads are atomic under the GIL, so the per-request
        # route needs no lock once the lane exists.
        existing = self._lanes.get(name)
        if existing is not None:
            if self._closed:
                raise ServerClosed("model server is shut down")
            return existing
        with self._lock:
            if self._closed:
                raise ServerClosed("model server is shut down")
        model = self.registry.get(name)  # may train; keep outside the lock
        with self._lock:
            if self._closed:
                raise ServerClosed("model server is shut down")
            lane = self._lanes.get(name)
            if lane is None:
                # Built under the lock: a lane starts a worker thread, so a
                # lost setdefault race would leak a live batcher forever.
                lane = _ModelLane(model, self.max_batch_size, self.max_latency_ms)
                self._lanes[name] = lane
            return lane

    def models(self) -> List[Dict[str, object]]:
        """Metadata of every currently loaded model (``/models`` route)."""
        with self._lock:
            lanes = list(self._lanes.values())
        return [lane.model.metadata() for lane in lanes]

    # ------------------------------------------------------------------ #
    # Prediction
    # ------------------------------------------------------------------ #
    def submit(self, name: str, X: Union[Sequence, np.ndarray]) -> "Future":
        """Enqueue a request; returns a future resolving to class ids.

        The request is validated *before* it enters the queue (shape errors
        surface immediately, not from the worker thread) and is coalesced
        with whatever else is in flight for the same model.
        """
        lane = self.lane(name)
        rows = lane.model.validate_batch(X)
        try:
            return lane.batcher.submit(rows)
        except BatcherClosed as error:
            raise ServerClosed(str(error)) from error

    def submit_many(self, name: str, X: Union[Sequence, np.ndarray]) -> List["Future"]:
        """Enqueue every row of ``X`` as its own single-sample request.

        The burst-offering path: validation and queue bookkeeping are
        amortized over the burst, but each row keeps its own future and is
        coalesced (or split) by the micro-batcher exactly like a separate
        :meth:`submit` call.  Used by high-fan-in callers (the serving
        benchmark's concurrent clients).
        """
        lane = self.lane(name)
        rows = lane.model.validate_batch(X)
        try:
            return lane.batcher.submit_many(
                [rows[i : i + 1] for i in range(rows.shape[0])]
            )
        except BatcherClosed as error:
            raise ServerClosed(str(error)) from error

    def predict(self, name: str, features: Union[Sequence, np.ndarray]) -> Dict:
        """Synchronous single-sample predict (the ``/predict`` route body).

        Returns a JSON-ready dict with the decoded label, the raw class id
        and the served latency.  Bit-identical to the design's ``run_batch``:
        the micro-batcher runs exactly that kernel.
        """
        lane = self.lane(name)
        start = time.monotonic()
        rows = lane.model.validate_batch(features)
        if rows.shape[0] != 1:
            raise ValueError(
                f"predict() serves exactly one sample, got {rows.shape[0]}; "
                "use predict_many() for bulk requests"
            )
        ids = self._resolve(lane, rows, start)
        return {
            "model": name,
            "class_id": int(ids[0]),
            "prediction": lane.model.decode(ids)[0].item(),
            "latency_ms": 1000.0 * (time.monotonic() - start),
        }

    def predict_many(self, name: str, X: Union[Sequence, np.ndarray]) -> Dict:
        """Synchronous bulk predict (the ``/predict`` route, ``batch`` key).

        The whole request enters the micro-batching queue as one unit:
        oversized requests are split across consecutive micro-batches and
        reassembled, small ones coalesce with concurrent traffic.  An empty
        batch is answered immediately with empty arrays.
        """
        lane = self.lane(name)
        start = time.monotonic()
        rows = lane.model.validate_batch(X)
        ids = self._resolve(lane, rows, start)
        return {
            "model": name,
            "class_ids": [int(i) for i in ids],
            "predictions": lane.model.decode(ids).tolist(),
            "n_samples": int(rows.shape[0]),
            "latency_ms": 1000.0 * (time.monotonic() - start),
        }

    def _resolve(self, lane: _ModelLane, rows: np.ndarray, start: float) -> np.ndarray:
        """Run one validated request through the lane and record its stats."""
        try:
            future = lane.batcher.submit(rows)
        except BatcherClosed as error:
            lane.stats.observe_error()
            raise ServerClosed(str(error)) from error
        try:
            ids = future.result()
        except Exception:
            lane.stats.observe_error()
            raise
        lane.stats.observe_request(
            latency_s=time.monotonic() - start, n_samples=rows.shape[0]
        )
        return ids

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict:
        """Server-wide statistics document (the ``/stats`` route)."""
        with self._lock:
            lanes = dict(self._lanes)
        return {
            "uptime_s": time.monotonic() - self._started,
            "max_batch_size": self.max_batch_size,
            "max_latency_ms": self.max_latency_ms,
            "models": {name: lane.stats.snapshot() for name, lane in lanes.items()},
        }

    def shutdown(self, drain: bool = True) -> None:
        """Stop serving; idempotent.

        ``drain=True`` completes every in-flight and queued request before
        returning (graceful); ``drain=False`` fails queued requests fast.
        New submissions raise :class:`ServerClosed` either way.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            lanes = list(self._lanes.values())
        for lane in lanes:
            lane.batcher.close(drain=drain)

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "ModelServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
