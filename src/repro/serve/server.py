"""The request-facing serving core: one ModelServer, in-process or fleet.

A :class:`ModelServer` serves every loaded model behind one API, in one of
two modes selected by ``workers``:

* ``workers=0`` (the oracle) — the original single-process layout: per
  model one :class:`~repro.serve.batching.MicroBatcher` lane feeding the
  vectorized ``run_batch`` kernel, plus one
  :class:`~repro.serve.stats.StatsRecorder`, all inside this process.
* ``workers=N`` — the frontend/worker split: ``N`` child processes (see
  :mod:`repro.serve.worker`) each host a slice of the model lanes, fed
  over the length-prefixed :mod:`repro.serve.transport` protocol.  This
  class becomes a thin router — model -> worker assignment (capped by
  ``lanes_per_worker``), heartbeat health checks, crash detection with
  automatic restart and transparent resubmission of in-flight predict
  requests, fleet-wide ``/stats`` aggregation, and graceful drain.

Both modes are bit-identical: a worker embeds a ``workers=0`` server, so
the fleet runs exactly the oracle's kernels.

Example::

    server = ModelServer(ModelRegistry(config=fast_config()), workers=4)
    server.open_lane("redwine/ours")
    out = server.predict("redwine/ours", [0.5] * 11)   # 11 redwine features
    server.stats()["workers"][0]["alive"]
    server.shutdown()          # graceful: drains in-flight requests
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.serve.batching import BatcherClosed, MicroBatcher
from repro.serve.model import ServedModel
from repro.serve.registry import ModelRegistry
from repro.serve.stats import StatsRecorder
from repro.serve.transport import MSG_CONTROL, MSG_REQUEST, WorkerCrashed
from repro.serve.worker import WorkerHandle, WorkerSpec, _Pending

#: Default coalescing ceiling: enough rows that a full micro-batch amortizes
#: the per-call overhead down to noise, small enough to keep latency tails low.
DEFAULT_MAX_BATCH_SIZE = 256
#: Default straggler window in milliseconds (0 = flush as soon as drained).
DEFAULT_MAX_LATENCY_MS = 2.0
#: How often the frontend heartbeats its workers (seconds).
DEFAULT_HEARTBEAT_INTERVAL_S = 2.0
#: Silence (no pong) after which a live-but-hung worker is killed+restarted.
DEFAULT_HEARTBEAT_TIMEOUT_S = 30.0
#: How many times one in-flight request survives worker crashes before its
#: future fails (bounds a poison request that kills every host it visits).
MAX_REQUEST_RETRIES = 3


class ServerClosed(RuntimeError):
    """Raised for requests submitted after :meth:`ModelServer.shutdown`.

    Example::

        server.shutdown()
        try:
            server.predict(name, features)
        except ServerClosed:
            ...  # the HTTP layer maps this to a 503 response
    """


class _ModelLane:
    """Everything one served model owns inside the server (batcher + stats)."""

    def __init__(self, model: ServedModel, max_batch_size: int, max_latency_ms: float):
        self.model = model
        self.stats = StatsRecorder(max_batch_size=max_batch_size)
        self.batcher = MicroBatcher(
            # Rows are validated at submit time; the worker runs the
            # unvalidated kernel straight onto run_batch.
            fn=model.kernel,
            max_batch_size=max_batch_size,
            max_latency_ms=max_latency_ms,
            on_batch=self.stats.observe_batch,
            name=model.name,
        )


class _WorkerSlot:
    """One seat in the worker fleet: the live handle plus its assignment.

    The handle changes identity across restarts; the slot is the stable
    object routing and bookkeeping hang off.
    """

    def __init__(self, index: int) -> None:
        self.index = index
        self.handle: Optional[WorkerHandle] = None
        self.models: set = set()
        self.restarts = 0
        # Re-entrant: spawning a replacement pings it, and a ping that hits
        # a just-dead pipe re-enters the death handler on this same slot.
        self.lock = threading.RLock()
        #: Signalled when a replacement handle is installed after a crash.
        self.replaced = threading.Condition(self.lock)


class ModelServer:
    """Batch inference server over the vectorized design simulators.

    Parameters
    ----------
    registry:
        Resolves model names to loaded designs (see
        :class:`~repro.serve.registry.ModelRegistry`).
    max_batch_size / max_latency_ms:
        Micro-batching knobs applied to every model lane (see
        :class:`~repro.serve.batching.MicroBatcher`).
    workers:
        ``0`` serves every lane in this process (the bit-exact oracle);
        ``N >= 1`` forks ``N`` worker processes and routes each model to
        exactly one of them.
    lanes_per_worker:
        Soft cap on models per worker: new models go to the least-loaded
        worker under the cap, falling back to the least-loaded overall once
        every worker is full (``None`` = least-loaded always).
    heartbeat_interval_s / heartbeat_timeout_s:
        Fleet health checks: ping cadence, and the silence after which a
        live-but-unresponsive worker is killed and restarted.
    restart_workers:
        When ``True`` (default) a dead worker is replaced and its in-flight
        predict requests are resubmitted on the replacement (at most
        :data:`MAX_REQUEST_RETRIES` times each); ``False`` fails them.

    Example::

        registry = ModelRegistry(config=fast_config())
        with ModelServer(registry, workers=4, lanes_per_worker=1) as server:
            single = server.predict("redwine/ours", x)          # one sample
            bulk = server.predict_many("redwine/ours", X_test)  # micro-batched
    """

    def __init__(
        self,
        registry: ModelRegistry,
        max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
        max_latency_ms: float = DEFAULT_MAX_LATENCY_MS,
        workers: int = 0,
        lanes_per_worker: Optional[int] = None,
        heartbeat_interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S,
        heartbeat_timeout_s: float = DEFAULT_HEARTBEAT_TIMEOUT_S,
        restart_workers: bool = True,
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if lanes_per_worker is not None and lanes_per_worker < 1:
            raise ValueError("lanes_per_worker must be >= 1 (or None)")
        self.registry = registry
        self.max_batch_size = int(max_batch_size)
        self.max_latency_ms = float(max_latency_ms)
        self.workers = int(workers)
        self.lanes_per_worker = lanes_per_worker
        self.heartbeat_interval_s = float(heartbeat_interval_s)
        self.heartbeat_timeout_s = float(heartbeat_timeout_s)
        self.restart_workers = bool(restart_workers)
        self._lock = threading.Lock()
        self._lanes: Dict[str, _ModelLane] = {}
        self._closed = False
        self._started = time.monotonic()

        self._slots: List[_WorkerSlot] = []
        self._routes: Dict[str, _WorkerSlot] = {}
        self._route_lock = threading.Lock()
        self._monitor_stop = threading.Event()
        self._monitor: Optional[threading.Thread] = None
        if self.workers:
            self._slots = [_WorkerSlot(i) for i in range(self.workers)]
            for slot in self._slots:
                with slot.lock:
                    self._spawn_locked(slot)
            self._monitor = threading.Thread(
                target=self._monitor_loop, name="worker-monitor", daemon=True
            )
            self._monitor.start()

    # ------------------------------------------------------------------ #
    # Model management (workers=0 path)
    # ------------------------------------------------------------------ #
    def lane(self, name: str) -> _ModelLane:
        """The (batcher, stats) lane of one model, created on first use.

        In-process mode only; with ``workers >= 1`` the lanes live in the
        worker processes — use :meth:`open_lane`.
        """
        if self.workers:
            raise RuntimeError(
                "lane() is the in-process path; with workers >= 1 model lanes "
                "live in the worker processes (use open_lane())"
            )
        # Fast path: dict reads are atomic under the GIL, so the per-request
        # route needs no lock once the lane exists.
        existing = self._lanes.get(name)
        if existing is not None:
            if self._closed:
                raise ServerClosed("model server is shut down")
            return existing
        with self._lock:
            if self._closed:
                raise ServerClosed("model server is shut down")
        model = self.registry.get(name)  # may train; keep outside the lock
        with self._lock:
            if self._closed:
                raise ServerClosed("model server is shut down")
            lane = self._lanes.get(name)
            if lane is None:
                # Built under the lock: a lane starts a worker thread, so a
                # lost setdefault race would leak a live batcher forever.
                lane = _ModelLane(model, self.max_batch_size, self.max_latency_ms)
                self._lanes[name] = lane
            return lane

    def open_lane(self, name: str) -> None:
        """Ensure ``name`` is served (training/loading it if cold), any mode.

        In-process this opens the lane here; in fleet mode the model is
        routed to a worker and its lane opens there.  Unknown names raise
        ``ValueError`` either way.
        """
        if not self.workers:
            self.lane(name)
            return
        self._ensure_routed(name)

    def models(self) -> List[Dict[str, object]]:
        """Metadata of every currently loaded model (``/models`` route)."""
        if not self.workers:
            with self._lock:
                lanes = list(self._lanes.values())
            return [lane.model.metadata() for lane in lanes]
        merged: List[Dict[str, object]] = []
        for slot in self._slots:
            try:
                future = self._slot_call(
                    slot, MSG_CONTROL, ("models", None), resubmit=True
                )
                merged.extend(future.result(timeout=30.0))
            except Exception:
                continue  # dead worker mid-restart: its models reappear after
        return merged

    # ------------------------------------------------------------------ #
    # Fleet plumbing
    # ------------------------------------------------------------------ #
    def _spawn_locked(self, slot: _WorkerSlot, preopen: Sequence[str] = ()) -> WorkerHandle:
        """Start one worker in ``slot`` (slot.lock held by the caller)."""
        siblings = [
            s.handle.conn
            for s in self._slots
            if s.handle is not None and s is not slot and s.handle.alive
        ]
        spec = WorkerSpec(
            max_batch_size=self.max_batch_size,
            max_latency_ms=self.max_latency_ms,
            preopen=tuple(preopen),
        )
        handle = WorkerHandle(
            self.registry,
            spec,
            index=slot.index,
            on_death=self._worker_died,
            sibling_conns=siblings,
        )
        slot.handle = handle
        handle.ping()
        return handle

    def _worker_died(self, handle: WorkerHandle, pending: Dict[int, _Pending]) -> None:
        """Crash path: restart the worker, resubmit its in-flight requests."""
        slot = self._slots[handle.index]
        replacement: Optional[WorkerHandle] = None
        with slot.lock:
            if slot.handle is handle:
                if not (self._closed or handle.draining or not self.restart_workers):
                    slot.restarts += 1
                    replacement = self._spawn_locked(slot, preopen=sorted(slot.models))
                    slot.replaced.notify_all()
            else:
                replacement = slot.handle  # already replaced by another path
        for pending_call in pending.values():
            future = pending_call.future
            if future.done():
                continue
            pending_call.retries += 1
            if (
                replacement is not None
                and pending_call.payload is not None
                and pending_call.retries <= MAX_REQUEST_RETRIES
            ):
                try:
                    replacement.resubmit(pending_call)
                    continue
                except WorkerCrashed:
                    pass  # replacement died instantly; fall through to fail
            if self._closed:
                future.set_exception(ServerClosed("model server is shut down"))
            else:
                future.set_exception(
                    WorkerCrashed(
                        f"worker {handle.index} (pid {handle.pid}) died before "
                        "answering"
                    )
                )

    def _slot_call(
        self, slot: _WorkerSlot, kind: int, payload: tuple, *, resubmit: bool
    ) -> Future:
        """Send one call to a slot's current worker, riding out restarts."""
        deadline = time.monotonic() + max(self.heartbeat_timeout_s, 5.0)
        while True:
            if self._closed:
                raise ServerClosed("model server is shut down")
            with slot.lock:
                handle = slot.handle
                if handle is None or not handle.alive:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise WorkerCrashed(
                            f"worker {slot.index} has no live replacement"
                        )
                    slot.replaced.wait(timeout=min(remaining, 0.25))
                    continue
            try:
                return handle.call(kind, payload, resubmit=resubmit)
            except WorkerCrashed:
                if time.monotonic() >= deadline:
                    raise
                # The death handler is installing a replacement; retry on it.

    def _ensure_routed(self, name: str) -> _WorkerSlot:
        """Model -> worker assignment, created (and lane-opened) on first use."""
        with self._route_lock:
            slot = self._routes.get(name)
        if slot is not None:
            if self._closed:
                raise ServerClosed("model server is shut down")
            return slot
        with self._route_lock:
            slot = self._routes.get(name)
            if slot is None:
                slot = self._pick_slot()
                slot.models.add(name)
                self._routes[name] = slot
                fresh = True
            else:
                fresh = False
        if fresh:
            try:
                # Synchronous open: unknown names fail here, not per-request,
                # mirroring lane()'s semantics.  Idempotent, so a worker crash
                # mid-open resubmits transparently.
                future = self._slot_call(
                    slot, MSG_CONTROL, ("open_lane", name), resubmit=True
                )
                future.result()
            except ValueError:
                with self._route_lock:
                    self._routes.pop(name, None)
                    slot.models.discard(name)
                raise
        return slot

    def _pick_slot(self) -> _WorkerSlot:
        """Least-loaded worker, preferring those under ``lanes_per_worker``."""
        ordered = sorted(self._slots, key=lambda s: (len(s.models), s.index))
        if self.lanes_per_worker is not None:
            under_cap = [s for s in ordered if len(s.models) < self.lanes_per_worker]
            if under_cap:
                return under_cap[0]
        return ordered[0]

    def _monitor_loop(self) -> None:
        """Heartbeat every worker; kill-and-restart the hung, reap the dead."""
        while not self._monitor_stop.wait(self.heartbeat_interval_s):
            for slot in self._slots:
                with slot.lock:
                    handle = slot.handle
                if handle is None or handle.draining or self._closed:
                    continue
                if not handle.process.is_alive():
                    # The reader sees EOF first in almost every case; this is
                    # the backstop for exotic deaths that leak the socket.
                    handle._mark_dead()
                    continue
                try:
                    handle.ping()
                except WorkerCrashed:
                    continue
                silent_since = handle.last_pong or handle.spawned
                if time.monotonic() - silent_since > self.heartbeat_timeout_s:
                    handle.process.kill()  # EOF -> _worker_died -> restart

    # ------------------------------------------------------------------ #
    # Prediction
    # ------------------------------------------------------------------ #
    def submit(self, name: str, X: Union[Sequence, np.ndarray]) -> "Future":
        """Enqueue a request; returns a future resolving to class ids.

        In-process the request is validated *before* it enters the queue;
        in fleet mode validation happens on the worker, so shape errors
        surface on the future instead.  Either way the request coalesces
        with whatever else is in flight for the same model.
        """
        if self.workers:
            slot = self._ensure_routed(name)
            rows = np.asarray(X, dtype=float)
            return self._slot_call(
                slot, MSG_REQUEST, (name, "ids", rows), resubmit=True
            )
        lane = self.lane(name)
        rows = lane.model.validate_batch(X)
        try:
            return lane.batcher.submit(rows)
        except BatcherClosed as error:
            raise ServerClosed(str(error)) from error

    def submit_many(self, name: str, X: Union[Sequence, np.ndarray]) -> List["Future"]:
        """Enqueue every row of ``X`` as its own single-sample request.

        The burst-offering path: one future per row, with bookkeeping (and,
        in fleet mode, the wire frame) amortized over the burst.  Each row
        is coalesced by the owning lane's micro-batcher exactly like a
        separate :meth:`submit` call.
        """
        if self.workers:
            slot = self._ensure_routed(name)
            rows = np.asarray(X, dtype=float)
            if rows.ndim == 1:
                rows = rows.reshape(1, -1) if rows.size else rows.reshape(0, 0)
            aggregate = self._slot_call(
                slot, MSG_REQUEST, (name, "ids_burst", rows), resubmit=True
            )
            futures: List[Future] = [Future() for _ in range(rows.shape[0])]

            def fan_out(done: Future) -> None:
                error = done.exception()
                for i, future in enumerate(futures):
                    if future.done():
                        continue
                    if error is not None:
                        future.set_exception(error)
                    else:
                        future.set_result(done.result()[i : i + 1])

            aggregate.add_done_callback(fan_out)
            return futures
        lane = self.lane(name)
        rows = lane.model.validate_batch(X)
        try:
            return lane.batcher.submit_many(
                [rows[i : i + 1] for i in range(rows.shape[0])]
            )
        except BatcherClosed as error:
            raise ServerClosed(str(error)) from error

    def predict(self, name: str, features: Union[Sequence, np.ndarray]) -> Dict:
        """Synchronous single-sample predict (the ``/predict`` route body).

        Returns a JSON-ready dict with the decoded label, the raw class id
        and the served latency.  Bit-identical to the design's ``run_batch``
        in both modes: the lane runs exactly that kernel.
        """
        start = time.monotonic()
        if self.workers:
            slot = self._ensure_routed(name)
            rows = np.asarray(features, dtype=float)
            future = self._slot_call(
                slot, MSG_REQUEST, (name, "single", rows), resubmit=True
            )
            result = dict(future.result())
            result["latency_ms"] = 1000.0 * (time.monotonic() - start)
            return result
        lane = self.lane(name)
        rows = lane.model.validate_batch(features)
        if rows.shape[0] != 1:
            raise ValueError(
                f"predict() serves exactly one sample, got {rows.shape[0]}; "
                "use predict_many() for bulk requests"
            )
        ids = self._resolve(lane, rows, start)
        return {
            "model": name,
            "class_id": int(ids[0]),
            "prediction": lane.model.decode(ids)[0].item(),
            "latency_ms": 1000.0 * (time.monotonic() - start),
        }

    def predict_many(self, name: str, X: Union[Sequence, np.ndarray]) -> Dict:
        """Synchronous bulk predict (the ``/predict`` route, ``batch`` key).

        The whole request enters the owning lane's micro-batching queue as
        one unit: oversized requests are split across consecutive
        micro-batches and reassembled, small ones coalesce with concurrent
        traffic.  An empty batch is answered immediately with empty arrays.
        """
        start = time.monotonic()
        if self.workers:
            slot = self._ensure_routed(name)
            rows = np.asarray(X, dtype=float)
            future = self._slot_call(
                slot, MSG_REQUEST, (name, "bulk", rows), resubmit=True
            )
            result = dict(future.result())
            result["latency_ms"] = 1000.0 * (time.monotonic() - start)
            return result
        lane = self.lane(name)
        rows = lane.model.validate_batch(X)
        ids = self._resolve(lane, rows, start)
        return {
            "model": name,
            "class_ids": [int(i) for i in ids],
            "predictions": lane.model.decode(ids).tolist(),
            "n_samples": int(rows.shape[0]),
            "latency_ms": 1000.0 * (time.monotonic() - start),
        }

    def _resolve(self, lane: _ModelLane, rows: np.ndarray, start: float) -> np.ndarray:
        """Run one validated request through the lane and record its stats."""
        try:
            future = lane.batcher.submit(rows)
        except BatcherClosed as error:
            lane.stats.observe_error()
            raise ServerClosed(str(error)) from error
        try:
            ids = future.result()
        except Exception:
            lane.stats.observe_error()
            raise
        lane.stats.observe_request(
            latency_s=time.monotonic() - start, n_samples=rows.shape[0]
        )
        return ids

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict:
        """Server-wide statistics document (the ``/stats`` route).

        In fleet mode the per-model sections are collected from the owning
        workers and merged into one view (each model lives on exactly one
        worker), next to a ``workers`` section with per-process health.
        """
        if not self.workers:
            with self._lock:
                lanes = dict(self._lanes)
            return {
                "uptime_s": time.monotonic() - self._started,
                "max_batch_size": self.max_batch_size,
                "max_latency_ms": self.max_latency_ms,
                "models": {name: lane.stats.snapshot() for name, lane in lanes.items()},
            }
        models: Dict[str, Dict] = {}
        workers_info: List[Dict] = []
        for slot in self._slots:
            with slot.lock:
                handle = slot.handle
            info = {
                "index": slot.index,
                "pid": handle.pid if handle is not None else None,
                "alive": bool(handle is not None and handle.alive),
                "ready": bool(handle is not None and handle.ready),
                "restarts": slot.restarts,
                "models": sorted(slot.models),
            }
            if info["alive"]:
                try:
                    snapshot = self._slot_call(
                        slot, MSG_CONTROL, ("stats", None), resubmit=True
                    ).result(timeout=30.0)
                    info["uptime_s"] = snapshot["uptime_s"]
                    models.update(snapshot["models"])
                except Exception:
                    info["alive"] = False  # died between the check and the call
            workers_info.append(info)
        return {
            "uptime_s": time.monotonic() - self._started,
            "max_batch_size": self.max_batch_size,
            "max_latency_ms": self.max_latency_ms,
            "workers_configured": self.workers,
            "lanes_per_worker": self.lanes_per_worker,
            "workers": workers_info,
            "models": models,
        }

    @property
    def ready(self) -> bool:
        """Whether the server can answer predict requests right now.

        In-process: true until shutdown.  Fleet: true once every worker
        process is alive and has answered at least one heartbeat — what the
        ``/healthz`` route reports and the bench scripts poll instead of
        sleeping.
        """
        if self._closed:
            return False
        if not self.workers:
            return True
        for slot in self._slots:
            with slot.lock:
                handle = slot.handle
            if handle is None or not handle.alive or not handle.ready:
                return False
        return True

    def shutdown(self, drain: bool = True) -> None:
        """Stop serving; idempotent.

        ``drain=True`` completes every in-flight and queued request before
        returning (graceful); ``drain=False`` fails queued requests fast.
        In fleet mode every worker drains its lanes and exits; stragglers
        are escalated to SIGTERM/SIGKILL.  New submissions raise
        :class:`ServerClosed` either way.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            lanes = list(self._lanes.values())
        self._monitor_stop.set()
        for lane in lanes:
            lane.batcher.close(drain=drain)
        handles = []
        for slot in self._slots:
            with slot.lock:
                if slot.handle is not None:
                    handles.append(slot.handle)
        for handle in handles:
            handle.shutdown(drain=drain)
        deadline = time.monotonic() + (60.0 if drain else 5.0)
        for handle in handles:
            if not handle.join(timeout=max(deadline - time.monotonic(), 0.1)):
                handle.process.terminate()
                if not handle.join(timeout=1.0):
                    handle.process.kill()
                    handle.join(timeout=1.0)
            handle.conn.close()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "ModelServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
