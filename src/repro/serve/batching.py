"""The async micro-batching queue feeding the vectorized simulators.

Thousands of concurrent small predict requests are individually tiny — a
single ``(1, m)`` matmul plus Python call overhead — but the PR 1 hot paths
(:meth:`~repro.hw.simulate.SequentialDatapathSimulator.run_batch` and
friends) are single-matmul vectorized: one ``(B, m)`` call costs barely more
than a ``(1, m)`` call.  :class:`MicroBatcher` closes that gap.  Requests
enter a queue as ``(rows, Future)`` pairs; one worker thread drains the
queue into micro-batches of at most ``max_batch_size`` rows, waits at most
``max_latency_ms`` for stragglers to coalesce, runs **one** vectorized call
per micro-batch and resolves the futures.

Two shapes of request share the queue:

* a **single** request contributes one row — under load many of them fuse
  into one micro-batch (this is where the >=5x serving throughput over the
  one-request-at-a-time path comes from);
* a **bulk** request contributes many rows — when it exceeds
  ``max_batch_size`` it is *split* across consecutive micro-batches and its
  future resolves once every chunk has been computed.

Example::

    batcher = MicroBatcher(fn=lambda X: X.sum(axis=1), max_batch_size=64)
    future = batcher.submit(np.ones((1, 6)))
    future.result()        # -> array([6.0])  (computed by the worker)
    batcher.close()
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from typing import Callable, Deque, List, Optional, Sequence

import numpy as np


class BatcherClosed(RuntimeError):
    """Raised by :meth:`MicroBatcher.submit` after shutdown has begun.

    Example::

        batcher.close()
        try:
            batcher.submit(rows)
        except BatcherClosed:
            ...  # reject the request upstream (HTTP 503)
    """


class _PendingRequest:
    """One queued request: its rows, its future and its partial results.

    ``__slots__`` and plain attributes keep per-request construction cost
    minimal — this object is created once per served request, on the
    latency-critical submit path.
    """

    __slots__ = ("rows", "future", "parts", "rows_done", "n_rows")

    def __init__(self, rows: np.ndarray, future: Future) -> None:
        self.rows = rows
        self.future = future
        self.parts: List[np.ndarray] = []
        self.rows_done = 0
        self.n_rows = int(rows.shape[0])


class MicroBatcher:
    """Coalesce concurrent predict requests into vectorized micro-batches.

    Parameters
    ----------
    fn:
        The vectorized kernel: called with a ``(B, m)`` float array, must
        return a length-``B`` result array (row ``i`` answers input row
        ``i``).  Runs only on the worker thread, so it needs no locking of
        its own.
    max_batch_size:
        Upper bound on rows per micro-batch (the coalescing ceiling, and
        the splitting threshold for oversized bulk requests).
    max_latency_ms:
        Once the worker observes a pending (partial) micro-batch, how long
        it keeps the batch open for stragglers before flushing.  ``0``
        flushes as soon as the queue is drained (lowest latency; coalescing
        still happens whenever requests arrive faster than the kernel runs).
    on_batch:
        Optional callback ``(n_rows) -> None`` invoked after every flushed
        micro-batch — the stats hook.

    Example::

        batcher = MicroBatcher(fn=model.predict_ids, max_batch_size=256)
        futures = [batcher.submit(row.reshape(1, -1)) for row in X]
        ids = np.concatenate([f.result() for f in futures])
        batcher.close()          # drains in-flight work, then stops
    """

    def __init__(
        self,
        fn: Callable[[np.ndarray], np.ndarray],
        max_batch_size: int = 256,
        max_latency_ms: float = 2.0,
        on_batch: Optional[Callable[[int], None]] = None,
        name: str = "model",
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_latency_ms < 0:
            raise ValueError("max_latency_ms must be >= 0")
        self.fn = fn
        self.max_batch_size = int(max_batch_size)
        self.max_latency_ms = float(max_latency_ms)
        self.on_batch = on_batch
        self.name = name

        self._lock = threading.Lock()
        self._has_work = threading.Condition(self._lock)
        self._queue: Deque[_PendingRequest] = deque()
        #: Rows queued and not yet flushed; maintained incrementally so the
        #: worker never scans the (possibly thousands-long) queue to decide
        #: whether a micro-batch is full.
        self._pending_rows = 0
        self._closing = False
        self._worker = threading.Thread(
            target=self._run, name=f"microbatch[{name}]", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------------ #
    # Request side
    # ------------------------------------------------------------------ #
    def submit(self, rows: np.ndarray) -> Future:
        """Enqueue a request; returns the future of its result array.

        ``rows`` must be a 2-D ``(k, m)`` array (``k = 1`` for single
        requests).  An empty request (``k = 0``) resolves immediately with
        an empty result and never occupies a micro-batch slot.
        """
        rows = np.asarray(rows)
        if rows.ndim != 2:
            raise ValueError(f"expected a 2-D (k, m) request, got shape {rows.shape}")
        future: Future = Future()
        if rows.shape[0] == 0:
            # Well-typed empty answer without a round trip through the worker.
            future.set_result(np.zeros(0, dtype=np.int64))
            return future
        request = _PendingRequest(rows, future)
        with self._lock:
            if self._closing:
                raise BatcherClosed(f"batcher {self.name!r} is shut down")
            was_idle = not self._queue
            self._queue.append(request)
            self._pending_rows += request.n_rows
            # The worker only needs waking when it could be blocked: on an
            # empty queue, or in the straggler window once a batch fills.
            if was_idle or self._pending_rows >= self.max_batch_size:
                self._has_work.notify()
        return future

    def submit_many(self, batches: Sequence[np.ndarray]) -> List[Future]:
        """Enqueue a burst of requests under one lock acquisition.

        Each element of ``batches`` becomes its own request with its own
        future (identical semantics to calling :meth:`submit` in a loop);
        only the queue bookkeeping is amortized.  This is the bulk-offering
        path HTTP handler threads and the serving benchmark use to push
        thousands of outstanding single-sample requests.
        """
        requests: List[_PendingRequest] = []
        futures: List[Future] = []
        for rows in batches:
            rows = np.asarray(rows)
            if rows.ndim != 2:
                raise ValueError(
                    f"expected 2-D (k, m) requests, got shape {rows.shape}"
                )
            future: Future = Future()
            futures.append(future)
            if rows.shape[0] == 0:
                future.set_result(np.zeros(0, dtype=np.int64))
            else:
                requests.append(_PendingRequest(rows, future))
        if requests:
            with self._lock:
                if self._closing:
                    raise BatcherClosed(f"batcher {self.name!r} is shut down")
                self._queue.extend(requests)
                self._pending_rows += sum(r.n_rows for r in requests)
                self._has_work.notify()
        return futures

    def pending_rows(self) -> int:
        """Rows currently queued (not yet flushed into a micro-batch)."""
        with self._lock:
            return self._pending_rows

    # ------------------------------------------------------------------ #
    # Worker side
    # ------------------------------------------------------------------ #
    def _collect_batch(self) -> List[_PendingRequest]:
        """Block for work, then carve out up to ``max_batch_size`` rows.

        Returns the requests participating in this micro-batch; each keeps
        track of how many of its rows earlier batches already served, so an
        oversized request stays at the head of the queue until every chunk
        has been computed.
        """
        deadline: Optional[float] = None
        with self._lock:
            while True:
                if self._queue:
                    if deadline is None:
                        # The straggler window opens when the worker first
                        # observes the pending batch (stamping at submit time
                        # would cost a clock read on every request).
                        deadline = time.monotonic() + self.max_latency_ms / 1000.0
                    if (
                        self._pending_rows >= self.max_batch_size
                        or self._closing
                        or time.monotonic() >= deadline
                    ):
                        break
                    self._has_work.wait(timeout=max(deadline - time.monotonic(), 0.0))
                elif self._closing:
                    return []
                else:
                    deadline = None
                    self._has_work.wait()

            batch: List[_PendingRequest] = []
            budget = self.max_batch_size
            for request in self._queue:  # deque iteration starts at the head
                if budget <= 0:
                    break
                batch.append(request)
                budget -= request.n_rows - request.rows_done
            return batch

    def _flush(self, batch: List[_PendingRequest]) -> None:
        """Run one vectorized call over the batch and resolve its futures."""
        chunks: List[np.ndarray] = []
        spans: List[tuple] = []  # (request, start_row_in_request, n_rows_taken)
        budget = self.max_batch_size
        for request in batch:
            take = min(request.n_rows - request.rows_done, budget)
            chunks.append(request.rows[request.rows_done : request.rows_done + take])
            spans.append((request, take))
            budget -= take
        stacked = chunks[0] if len(chunks) == 1 else np.concatenate(chunks, axis=0)

        try:
            results = np.asarray(self.fn(stacked))
            if results.shape[0] != stacked.shape[0]:
                raise RuntimeError(
                    f"batch kernel returned {results.shape[0]} results "
                    f"for {stacked.shape[0]} rows"
                )
        except BaseException as error:  # propagate to every waiting caller
            with self._lock:
                for request, _ in spans:
                    # Spans are a prefix of the queue (the worker always
                    # serves from the head), so eviction is popleft-shaped.
                    if self._queue and self._queue[0] is request:
                        self._queue.popleft()
                        self._pending_rows = max(
                            0, self._pending_rows - (request.n_rows - request.rows_done)
                        )
            for request, _ in spans:
                if not request.future.done():
                    request.future.set_exception(error)
            return

        if self.on_batch is not None:
            self.on_batch(int(stacked.shape[0]))

        completed: List[_PendingRequest] = []
        offset = 0
        with self._lock:
            for request, take in spans:
                request.parts.append(results[offset : offset + take])
                request.rows_done += take
                self._pending_rows = max(0, self._pending_rows - take)
                offset += take
                if request.rows_done == request.n_rows:
                    # Completion is FIFO: a request can only finish once
                    # everything ahead of it finished, so it is at the head
                    # (unless close(drain=False) already evicted it).
                    if self._queue and self._queue[0] is request:
                        self._queue.popleft()
                    completed.append(request)
        # Resolve futures outside the lock: callers may react immediately.
        # A future can already be failed by close(drain=False) racing with
        # this flush; the done() guard keeps the worker alive in that case.
        for request in completed:
            parts = request.parts
            if not request.future.done():
                request.future.set_result(
                    parts[0] if len(parts) == 1 else np.concatenate(parts, axis=0)
                )

    def _run(self) -> None:
        while True:
            batch = self._collect_batch()
            if not batch:
                return  # closing and fully drained
            self._flush(batch)

    # ------------------------------------------------------------------ #
    # Shutdown
    # ------------------------------------------------------------------ #
    def close(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop the batcher; idempotent.

        ``drain=True`` (graceful) refuses new submissions but lets the
        worker finish every queued request before exiting, so in-flight
        futures all resolve.  ``drain=False`` fails queued requests with
        :class:`BatcherClosed` immediately.
        """
        with self._lock:
            self._closing = True
            if not drain:
                abandoned = list(self._queue)
                self._queue.clear()
                self._pending_rows = 0
            self._has_work.notify_all()
        if not drain:
            error = BatcherClosed(f"batcher {self.name!r} shut down without draining")
            for request in abandoned:
                if not request.future.done():
                    request.future.set_exception(error)
        self._worker.join(timeout=timeout)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
