"""``python -m repro.serve`` — the ``repro-serve`` console entry point.

Example::

    PYTHONPATH=src python -m repro.serve --fast --port 8000
"""

import sys

from repro.cli import main_serve

if __name__ == "__main__":
    sys.exit(main_serve())
