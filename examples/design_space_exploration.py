#!/usr/bin/env python3
"""Design-space exploration of the sequential printed SVM.

The paper fixes one design point per dataset (low-precision inputs, the
lowest weight precision that retains accuracy, OvR, MUX storage).  This
example opens up the knobs the paper's Section II discusses and maps the
accuracy / energy / area trade-offs on one dataset:

* input precision (2-6 bits) x weight precision (3-8 bits) sweep;
* One-vs-Rest against One-vs-One storage cost;
* bespoke MUX storage against the crossbar-ROM alternative;
* the accuracy/energy Pareto front over all explored points.

Run:  python examples/design_space_exploration.py [--dataset redwine] [--full]
"""

import argparse

from repro.core.design_flow import FlowConfig, fast_config, prepare_dataset, quantize_split_inputs
from repro.core.sequential_svm import SequentialSVMDesign
from repro.eval.pareto import TradeoffPoint, pareto_front
from repro.ml.multiclass import OneVsOneClassifier, OneVsRestClassifier
from repro.ml.quantization import quantize_linear_classifier
from repro.ml.svm import LinearSVC


def train_ovr(split, max_iter):
    clf = OneVsRestClassifier(LinearSVC(max_iter=max_iter, random_state=0))
    clf.fit(split.X_train, split.y_train)
    return clf


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="redwine")
    parser.add_argument("--full", action="store_true", help="use the full-size dataset")
    args = parser.parse_args()
    config = FlowConfig() if args.full else fast_config()

    raw_split = prepare_dataset(args.dataset, config)
    print(
        f"Dataset {args.dataset}: {raw_split.n_features} features, "
        f"{raw_split.n_classes} classes, {raw_split.n_train} training samples"
    )

    # ------------------------------------------------------------------ #
    # Precision sweep
    # ------------------------------------------------------------------ #
    print("\n=== Precision sweep (input bits x weight bits) ===")
    print(f"{'in':>3s} {'wt':>3s} {'acc %':>7s} {'area cm2':>9s} {'power mW':>9s} {'energy mJ':>10s}")
    points = []
    for input_bits in (2, 3, 4, 5, 6):
        split = quantize_split_inputs(raw_split, input_bits)
        classifier = train_ovr(split, config.svm_max_iter)
        for weight_bits in (3, 4, 5, 6, 8):
            quantized = quantize_linear_classifier(
                classifier, input_bits=input_bits, weight_bits=weight_bits
            )
            design = SequentialSVMDesign(quantized, dataset=args.dataset)
            report = design.evaluate(split.X_test, split.y_test)
            print(
                f"{input_bits:3d} {weight_bits:3d} {report.accuracy_percent:7.1f} "
                f"{report.area_cm2:9.2f} {report.power_mw:9.2f} {report.energy_mj:10.3f}"
            )
            points.append(
                TradeoffPoint(
                    label=f"in{input_bits}/wt{weight_bits}",
                    maximise_value=report.accuracy_percent,
                    minimise_value=report.energy_mj,
                )
            )

    print("\nAccuracy/energy Pareto-optimal configurations:")
    for point in sorted(pareto_front(points), key=lambda p: p.minimise_value):
        print(
            f"  {point.label:10s} accuracy {point.maximise_value:5.1f} %  "
            f"energy {point.minimise_value:6.3f} mJ"
        )

    # ------------------------------------------------------------------ #
    # OvR vs OvO storage cost (the paper's multi-class argument)
    # ------------------------------------------------------------------ #
    print("\n=== OvR vs OvO (storage and energy impact) ===")
    split = quantize_split_inputs(raw_split, config.input_bits)
    for name, wrapper in [("OvR", OneVsRestClassifier), ("OvO", OneVsOneClassifier)]:
        clf = wrapper(LinearSVC(max_iter=config.svm_max_iter, random_state=0))
        clf.fit(split.X_train, split.y_train)
        quantized = quantize_linear_classifier(clf, input_bits=config.input_bits, weight_bits=6)
        design = SequentialSVMDesign(quantized, dataset=args.dataset)
        report = design.evaluate(split.X_test, split.y_test, model_name=f"seq. SVM ({name})")
        print(
            f"  {name}: {quantized.n_classifiers:2d} stored vectors "
            f"({design.storage.total_bits:5d} bits), "
            f"{report.cycles_per_classification:2d} cycles, "
            f"acc {report.accuracy_percent:5.1f} %, energy {report.energy_mj:6.3f} mJ"
        )

    # ------------------------------------------------------------------ #
    # MUX storage vs crossbar ROM (the paper's storage argument)
    # ------------------------------------------------------------------ #
    print("\n=== Bespoke MUX storage vs crossbar ROM ===")
    classifier = train_ovr(split, config.svm_max_iter)
    quantized = quantize_linear_classifier(classifier, input_bits=config.input_bits, weight_bits=6)
    for style in ("mux", "crossbar"):
        design = SequentialSVMDesign(quantized, storage_style=style, dataset=args.dataset)
        report = design.evaluate(split.X_test, split.y_test, model_name=f"seq. SVM ({style})")
        storage_area = report.area_breakdown_cm2["storage"]
        print(
            f"  {style:9s}: storage {storage_area:7.2f} cm^2, total {report.area_cm2:7.2f} cm^2, "
            f"power {report.power_mw:6.2f} mW, energy {report.energy_mj:6.3f} mJ"
        )


if __name__ == "__main__":
    main()
