#!/usr/bin/env python3
"""Manufacturability study: floorplan, fabrication yield and calibration robustness.

Beyond power and energy, a disposable printed classifier must physically fit
the label it is printed on, survive the high defect densities of printed
processes, and its advantages must not hinge on the exact values of any one
technology calibration.  This example takes the PenDigits comparison (the
dataset where the paper notes the baselines' "unrealistic hardware
overheads") and answers three manufacturing questions:

1. what rectangle of foil does each design need (row-based floorplan on a
   20 cm printing web), and does it fit a 10 cm x 15 cm smart label?
2. what fraction of printed instances will actually work, and what does one
   *working* classifier cost?
3. do the paper's conclusions survive +/-30 % perturbations of every printed
   PDK calibration parameter?

Run:  python examples/manufacturability_study.py [--full]
"""

import argparse

from repro.core.design_flow import FlowConfig, fast_config, run_flow
from repro.eval.sensitivity import DEFAULT_CORNERS, sweep_pdk_parameters
from repro.hw.floorplan import Floorplanner, compare_manufacturability

LABEL_WIDTH_CM = 10.0
LABEL_HEIGHT_CM = 15.0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="use the full-size dataset")
    parser.add_argument("--dataset", default="pendigits")
    args = parser.parse_args()
    config = FlowConfig() if args.full else fast_config()

    kinds = ("ours", "svm_parallel_exact", "svm_parallel_approx")
    results = {kind: run_flow(args.dataset, kind, config) for kind in kinds}

    # ------------------------------------------------------------------ #
    print("=== 1. Floorplans on a 20 cm printing web ===")
    floorplanner = Floorplanner(max_width_cm=20.0)
    for kind, result in results.items():
        plan = floorplanner.floorplan(result.design.hardware())
        fits = plan.fits(LABEL_WIDTH_CM, LABEL_HEIGHT_CM)
        print(
            f"  {result.report.model:18s}: {plan.width_cm:5.1f} x {plan.height_cm:5.1f} cm "
            f"(util {100 * plan.utilization:3.0f} %, wire ~{plan.estimated_wire_length_cm():5.1f} cm)  "
            f"fits {LABEL_WIDTH_CM:.0f}x{LABEL_HEIGHT_CM:.0f} cm label: {fits}"
        )

    # ------------------------------------------------------------------ #
    print("\n=== 2. Fabrication yield and cost per working classifier ===")
    areas = {results[k].report.model: results[k].report.area_cm2 for k in kinds}
    table = compare_manufacturability(areas)
    for name, row in table.items():
        print(
            f"  {name:18s}: area {row['area_cm2']:6.1f} cm^2  "
            f"yield {100 * row['yield']:5.1f} %  "
            f"cost/working unit {row['cost_per_working_unit']:.4f}"
        )

    # ------------------------------------------------------------------ #
    print("\n=== 3. PDK-calibration sensitivity (+/-30 % corners) ===")
    report = sweep_pdk_parameters(
        list(results.values()), corners=DEFAULT_CORNERS, dataset=args.dataset
    )
    print(report.summary())
    low, high = report.energy_improvement_range()
    print(
        f"\n  energy improvement vs the exact parallel SVM stays within "
        f"[{low:.1f}x, {high:.1f}x] across all corners"
    )
    for conclusion in ("energy_win", "battery_fit", "faster_clock"):
        holds = report.conclusion_holds_everywhere(conclusion)
        print(f"  conclusion {conclusion!r} holds at every corner: {holds}")


if __name__ == "__main__":
    main()
