#!/usr/bin/env python3
"""Smart-packaging scenario: wine-quality grading labels, down to Verilog.

Printed electronics target disposable smart packaging; the wine-quality
datasets (RedWine / WhiteWine) are the paper's stand-in for that class of
application: a printed label estimates the quality grade from a handful of
physicochemical sensor readings.  This example

* designs the proposed sequential SVM for both wine datasets,
* prints the hardwired support-vector table the MUX storage implements,
* exports the behavioural Verilog a printed-PDK synthesis flow would consume,
* cross-checks the Verilog's architectural parameters against the
  Python cost model,
* and exports the *structural* Verilog of one hardwired constant-MAC
  datapath, raw and after the netlist optimization pass pipeline
  (``--opt-level``), demonstrating the optimizer end-to-end.

Run:  python examples/smart_packaging_verilog.py [--outdir build/] [--full]
      [--opt-level {0,1,2}]
"""

import argparse
import os

from repro.core.design_flow import FlowConfig, fast_config, run_sequential_svm_flow
from repro.eval.table1 import design_mac_netlist
from repro.hw.opt import optimize
from repro.hw.synthesis import gate_equivalent_count
from repro.hw.verilog import netlist_to_verilog


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--outdir", default="build", help="directory for the generated Verilog")
    parser.add_argument("--full", action="store_true", help="use the full-size datasets")
    parser.add_argument(
        "--opt-level",
        type=int,
        default=2,
        choices=(0, 1, 2),
        help="netlist optimization level for the structural MAC datapath export",
    )
    args = parser.parse_args()
    config = FlowConfig() if args.full else fast_config()

    os.makedirs(args.outdir, exist_ok=True)

    for dataset in ("redwine", "whitewine"):
        print(f"\n=== {dataset}: printed wine-quality grading label ===")
        result = run_sequential_svm_flow(dataset, config)
        design = result.design
        report = result.report
        model = design.model

        print(design.summary())
        print(f"  accuracy {report.accuracy_percent:.1f} %  "
              f"power {report.power_mw:.1f} mW  energy {report.energy_mj:.3f} mJ")
        print(f"  gate equivalents: {gate_equivalent_count(design.hardware()):,.0f} NAND2")

        print("\n  Hardwired support-vector table (integer codes, bias last):")
        table = model.stored_coefficients()
        for k, word in enumerate(table):
            weights_text = " ".join(f"{int(w):4d}" for w in word[:-1])
            print(f"    class {k}: [{weights_text}]  bias {int(word[-1]):6d}")

        verilog = design.to_verilog()
        path = os.path.join(args.outdir, f"sequential_svm_{dataset}.v")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(verilog)
        print(f"\n  behavioural Verilog written to {path} ({len(verilog.splitlines())} lines)")

        # Cross-check the exported module against the cost model's geometry.
        assert f"N_CLASSIFIERS = {design.n_classifiers}" in verilog
        assert f"N_FEATURES    = {design.n_features}" in verilog
        print("  Verilog architectural parameters match the Python model.")

        # Structural export of one hardwired constant-MAC datapath, raw vs
        # pass-optimized — the bespoke-multiplier collapse made explicit.
        netlist = design_mac_netlist(design)
        # verify=True sweeps raw-vs-optimized with random vectors and raises
        # on any divergence (a no-op at level 0, where nothing changes).
        result = optimize(netlist, level=args.opt_level, verify=True)
        structural = netlist_to_verilog(result.netlist)
        mac_path = os.path.join(args.outdir, f"mac_datapath_{dataset}.v")
        with open(mac_path, "w", encoding="utf-8") as handle:
            handle.write(structural)
        stats = result.stats
        print(
            f"  structural MAC datapath (classifier 0): {stats.gates_before} gates raw"
            f" -> {stats.gates_after} optimized at level {stats.level}"
            f" ({stats.reduction_percent:.1f}% removed, bit-exact)"
        )
        print(f"  optimized structural Verilog written to {mac_path}")


if __name__ == "__main__":
    main()
