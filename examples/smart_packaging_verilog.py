#!/usr/bin/env python3
"""Smart-packaging scenario: wine-quality grading labels, down to Verilog.

Printed electronics target disposable smart packaging; the wine-quality
datasets (RedWine / WhiteWine) are the paper's stand-in for that class of
application: a printed label estimates the quality grade from a handful of
physicochemical sensor readings.  This example

* designs the proposed sequential SVM for both wine datasets,
* prints the hardwired support-vector table the MUX storage implements,
* exports the behavioural Verilog a printed-PDK synthesis flow would consume,
* and cross-checks the Verilog's architectural parameters against the
  Python cost model.

Run:  python examples/smart_packaging_verilog.py [--outdir build/] [--full]
"""

import argparse
import os

from repro.core.design_flow import FlowConfig, fast_config, run_sequential_svm_flow
from repro.hw.synthesis import gate_equivalent_count


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--outdir", default="build", help="directory for the generated Verilog")
    parser.add_argument("--full", action="store_true", help="use the full-size datasets")
    args = parser.parse_args()
    config = FlowConfig() if args.full else fast_config()

    os.makedirs(args.outdir, exist_ok=True)

    for dataset in ("redwine", "whitewine"):
        print(f"\n=== {dataset}: printed wine-quality grading label ===")
        result = run_sequential_svm_flow(dataset, config)
        design = result.design
        report = result.report
        model = design.model

        print(design.summary())
        print(f"  accuracy {report.accuracy_percent:.1f} %  "
              f"power {report.power_mw:.1f} mW  energy {report.energy_mj:.3f} mJ")
        print(f"  gate equivalents: {gate_equivalent_count(design.hardware()):,.0f} NAND2")

        print("\n  Hardwired support-vector table (integer codes, bias last):")
        table = model.stored_coefficients()
        for k, word in enumerate(table):
            weights_text = " ".join(f"{int(w):4d}" for w in word[:-1])
            print(f"    class {k}: [{weights_text}]  bias {int(word[-1]):6d}")

        verilog = design.to_verilog()
        path = os.path.join(args.outdir, f"sequential_svm_{dataset}.v")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(verilog)
        print(f"\n  behavioural Verilog written to {path} ({len(verilog.splitlines())} lines)")

        # Cross-check the exported module against the cost model's geometry.
        assert f"N_CLASSIFIERS = {design.n_classifiers}" in verilog
        assert f"N_FEATURES    = {design.n_features}" in verilog
        print("  Verilog architectural parameters match the Python model.")


if __name__ == "__main__":
    main()
