#!/usr/bin/env python3
"""Quickstart: design one energy-efficient printed sequential SVM.

This walks the full flow of the paper on the Cardiotocography stand-in
dataset:

1. load the dataset and apply the paper's preprocessing (normalise to [0,1],
   80/20 split, low-precision inputs);
2. train a One-vs-Rest linear SVM and quantize it to the lowest weight
   precision that retains accuracy;
3. generate the bespoke sequential circuit (control + MUX storage + folded
   compute engine + sequential argmax voter);
4. evaluate it with the printed (EGFET-like) PDK: area, power, frequency,
   latency and energy — the columns of the paper's Table I;
5. simulate one classification cycle by cycle and check it is bit-exact
   against the quantized software model;
6. check that the design can run from a Molex 30 mW printed battery.

Run:  python examples/quickstart.py [--full]
(--full uses the full-size dataset and takes a couple of minutes;
the default uses a reduced dataset so the example finishes in seconds.)
"""

import argparse

from repro.core.design_flow import FlowConfig, fast_config, run_sequential_svm_flow
from repro.eval.battery import assess_design
from repro.eval.reporting import breakdown_summary
from repro.hw.pdk import MOLEX_30MW


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="use the full-size dataset")
    parser.add_argument("--dataset", default="cardio", help="dataset name (default: cardio)")
    args = parser.parse_args()

    config = FlowConfig() if args.full else fast_config()

    print(f"=== 1-3. Train, quantize and generate the sequential SVM for {args.dataset!r} ===")
    result = run_sequential_svm_flow(args.dataset, config)
    design = result.design
    print(design.summary())
    print()
    print(f"floating-point accuracy : {result.float_accuracy_percent:.2f} %")
    print(f"chosen weight precision : {result.weight_bits_used} bits")
    print()

    print("=== 4. Hardware evaluation (Table I columns) ===")
    report = result.report
    print(report)
    print(breakdown_summary(report))
    print()

    print("=== 5. Cycle-accurate simulation of one classification ===")
    sample = result.split.X_test[0]
    true_label = result.split.y_test[0]
    trace = design.simulate_sample(sample)
    for step in trace.trace:
        marker = "<- new best" if step.comparator_fired else ""
        print(
            f"  cycle {step.cycle}: classifier {step.selected_classifier} "
            f"score {step.score:8d}  best ({step.best_class}, {step.best_score}) {marker}"
        )
    print(f"  predicted class id: {trace.predicted_class}   true class id: {true_label}")
    bitexact = design.verify_against_model(result.split.X_test)
    print(f"  hardware == quantized software model on the whole test set: {bitexact}")
    print()

    print("=== 6. Printed-battery feasibility ===")
    assessment = assess_design(report, MOLEX_30MW)
    print(f"  {assessment}")
    if assessment.classifications_per_charge:
        print(
            f"  one full charge sustains about "
            f"{assessment.classifications_per_charge:,.0f} classifications"
        )


if __name__ == "__main__":
    main()
