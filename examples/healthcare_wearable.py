#!/usr/bin/env python3
"""Healthcare-wearable scenario: battery-powered cardiotocography monitoring.

The paper motivates printed classifiers with battery-powered smart
healthcare products.  This example designs a printed cardiotocography
classifier (the Cardio dataset: fetal heart-rate features -> Normal /
Suspect / Pathologic) and studies how the architecture choice affects the
battery that has to be laminated into the wearable patch:

* compares the proposed sequential SVM against the fully-parallel SVM and
  MLP baselines on power and energy;
* checks which printed power sources (Molex 30 mW, Zinergy 15 mW,
  Blue Spark 10 mW, printed solar) can drive each design;
* converts the energy numbers into battery life at a realistic monitoring
  duty cycle (one classification every few seconds).

Run:  python examples/healthcare_wearable.py [--full]
"""

import argparse

from repro.core.design_flow import FlowConfig, fast_config, run_dataset_comparison
from repro.eval.battery import assess_design, battery_life_extension, best_battery_for
from repro.hw.pdk import MOLEX_30MW, PRINTED_BATTERIES

#: The wearable classifies once every CLASSIFICATION_PERIOD_S seconds.
CLASSIFICATION_PERIOD_S = 5.0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="use the full-size dataset")
    args = parser.parse_args()
    config = FlowConfig() if args.full else fast_config()

    print("Designing all four classifier circuits for the Cardio dataset...")
    results = run_dataset_comparison("cardio", config=config)
    reports = {r.kind: r.report for r in results}

    print("\n=== Hardware comparison (Table I, Cardio block) ===")
    for result in results:
        print(result.report)

    print("\n=== Which printed power source can drive each design? ===")
    for kind, report in reports.items():
        battery = best_battery_for(report, PRINTED_BATTERIES)
        verdict = battery.name if battery else "no existing printed source is sufficient"
        print(f"  {report.model:18s} ({report.power_mw:6.1f} mW): {verdict}")

    print("\n=== Battery life in the monitoring scenario ===")
    ours = reports["ours"]
    # Duty cycle: the circuit is active for `latency` out of every period.
    duty = min(ours.latency_ms / 1000.0 / CLASSIFICATION_PERIOD_S, 1.0)
    assessment = assess_design(ours, MOLEX_30MW, duty_cycle=duty)
    print(
        f"  proposed sequential SVM, classifying every {CLASSIFICATION_PERIOD_S:.0f} s "
        f"(duty cycle {100 * duty:.1f} %):"
    )
    print(f"    average power  : {ours.power_mw * duty:6.2f} mW")
    print(f"    battery life   : {assessment.lifetime_hours:6.1f} h on a {MOLEX_30MW.name}")
    print(
        f"    classifications per charge: "
        f"{assessment.classifications_per_charge:,.0f}"
    )

    print("\n=== Battery-life extension over the state of the art ===")
    for kind, label in [
        ("svm_parallel_exact", "fully-parallel SVM [2]"),
        ("svm_parallel_approx", "approximate parallel SVM [3]"),
        ("mlp_parallel", "bespoke MLP [4]"),
    ]:
        factor = battery_life_extension(ours, reports[kind])
        print(f"  vs {label:28s}: {factor:4.1f}x longer battery life")


if __name__ == "__main__":
    main()
