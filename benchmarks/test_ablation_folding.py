"""Ablation A4: folded (sequential) against fully-parallel compute.

The core architectural decision of the paper: fold the whole SVM over one
compute engine (one classifier per cycle) instead of instantiating dedicated
hardware per coefficient.  This ablation isolates that decision by building
both architectures from the *same* trained OvR model (same coefficients,
same precision, same multi-class strategy), so the difference is purely the
folding — not the OvR/OvO, precision or baseline-implementation choices that
also separate the paper's design from its published baselines.

Finding (recorded in EXPERIMENTS.md): folding alone always cuts *power*
(less simultaneously-active hardware) and raises the clock frequency, but it
trades latency for it, so the *energy* advantage of folding in isolation
only materialises once enough classifiers share the engine (PenDigits' ten
classes) — consistent with the paper's Table I, where the Cardio energy gap
against the strongest baseline is the smallest.
"""

import pytest

from repro.core.parallel_svm import ParallelSVMDesign
from repro.core.sequential_svm import SequentialSVMDesign
from repro.eval.reference import TABLE1_DATASETS


def _build_pair(get_block, dataset):
    flow = get_block(dataset)["ours"].flow_result
    model = flow.design.model  # quantized OvR model of the proposed design
    X_test, y_test = flow.split.X_test, flow.split.y_test
    sequential = SequentialSVMDesign(model, dataset=dataset)
    seq_report = sequential.evaluate(X_test, y_test, model_name="folded")
    parallel = ParallelSVMDesign(model, style="exact", dataset=dataset)
    par_report = parallel.evaluate(X_test, y_test, model_name="fully parallel (same model)")
    return model, seq_report, par_report


@pytest.mark.parametrize("dataset", list(TABLE1_DATASETS))
def test_folding_cuts_power_and_raises_clock(benchmark, dataset, get_block):
    flow = get_block(dataset)["ours"].flow_result
    model = flow.design.model
    X_test, y_test = flow.split.X_test, flow.split.y_test

    def build_parallel():
        design = ParallelSVMDesign(model, style="exact", dataset=dataset)
        return design.evaluate(X_test, y_test, model_name="fully parallel (same model)")

    par_report = benchmark.pedantic(build_parallel, rounds=1, iterations=1)
    seq_report = SequentialSVMDesign(model, dataset=dataset).evaluate(
        X_test, y_test, model_name="folded"
    )

    # Identical functional behaviour (same integer model underneath).
    assert seq_report.accuracy_percent == pytest.approx(par_report.accuracy_percent)

    # Folding: one classifier's worth of active arithmetic per cycle.
    assert seq_report.cycles_per_classification == model.n_classifiers
    assert par_report.cycles_per_classification == 1
    assert seq_report.power_mw < par_report.power_mw

    # Shorter critical path -> higher clock, at the price of n-cycle latency.
    assert seq_report.frequency_hz > par_report.frequency_hz
    assert seq_report.latency_ms > par_report.latency_ms


def test_folding_energy_win_requires_enough_classes(benchmark, get_block):
    """Energy advantage of folding in isolation appears at high class counts:
    ten folded classifiers (PenDigits) give a clear win, three (Cardio) do not."""
    _, cardio_seq, cardio_par = benchmark.pedantic(
        lambda: _build_pair(get_block, "cardio"), rounds=1, iterations=1
    )
    _, pendigits_seq, pendigits_par = _build_pair(get_block, "pendigits")
    cardio_gain = cardio_par.energy_mj / cardio_seq.energy_mj
    pendigits_gain = pendigits_par.energy_mj / pendigits_seq.energy_mj
    assert pendigits_gain > cardio_gain
    # With ten classifiers folded over one engine the energy win is clear.
    assert pendigits_gain > 1.0
