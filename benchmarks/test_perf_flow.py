"""Perf-smoke benchmark: flow-execution caching floors and trajectory record.

Runs :func:`repro.perf.flow_bench.run_flow_benchmark` — cold, warm-from-disk
and process-sharded Table I regeneration on a fast-configuration subset —
and asserts the ISSUE's acceptance criteria:

* a warm persistent cache regenerates Table I with **zero** training calls;
* the warm regeneration is at least 5x faster than the cold one;
* both the warm and the sharded tables are bit-identical to the cold table
  (reports and aggregates).

It then refreshes ``BENCH_flow.json`` at the repo root so the flow-execution
trajectory is tracked from this PR onward.  Marked ``perf_smoke`` so it can
be selected alone (``pytest -m perf_smoke``) as a quick regression probe.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.perf.flow_bench import run_flow_benchmark, write_benchmark

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Acceptance floor from the ISSUE; measured headroom is far above it.
MIN_WARM_SPEEDUP = 5.0


@pytest.fixture(scope="module")
def bench_results():
    return run_flow_benchmark()


@pytest.mark.perf_smoke
def test_warm_cache_skips_all_training(bench_results):
    assert bench_results["cold"]["training_calls"] > 0
    assert bench_results["warm"]["training_calls"] == 0, (
        "warm persistent cache must serve Table I without retraining"
    )


@pytest.mark.perf_smoke
def test_warm_cache_speedup_floor(bench_results):
    speedup = bench_results["warm"]["speedup_vs_cold"]
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm Table I regeneration only {speedup:.1f}x faster than cold "
        f"(floor {MIN_WARM_SPEEDUP}x)"
    )


@pytest.mark.perf_smoke
def test_cached_and_sharded_tables_bit_identical(bench_results):
    assert bench_results["warm"]["bit_identical_to_cold"]
    assert bench_results["sharded"]["bit_identical_to_cold"]


@pytest.mark.perf_smoke
def test_record_flow_trajectory(bench_results):
    path = write_benchmark(bench_results, REPO_ROOT / "BENCH_flow.json")
    assert path.exists()
    assert bench_results["cold"]["rows_per_s"] > 0
    assert bench_results["warm"]["rows_per_s"] > bench_results["cold"]["rows_per_s"]
