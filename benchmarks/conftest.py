"""Shared fixtures for the benchmark harness.

The benchmarks regenerate the paper's Table I with the *full* flow
configuration (full-size synthetic datasets, the paper's precision policy).
Training is the expensive part, so the regenerated table is built once per
benchmark session and shared by every benchmark module; the quantities each
benchmark times are the hardware-generation / analysis steps, which is where
an EDA flow spends its time once models are trained.
"""

from __future__ import annotations

import pytest

from repro.core.design_flow import FlowConfig
from repro.eval.table1 import Table1, generate_table1, table1_aggregates

#: Configuration used by every benchmark: the paper's default flow.
BENCHMARK_CONFIG = FlowConfig()


@pytest.fixture(scope="session")
def table1() -> Table1:
    """The fully regenerated Table I (all datasets, all reported models)."""
    return generate_table1(config=BENCHMARK_CONFIG)


@pytest.fixture(scope="session")
def aggregates(table1):
    """Headline aggregates (energy improvements, accuracy gains, power stats)."""
    return table1_aggregates(table1)


def _assert_same_regime(measured: float, published: float, factor: float = 3.0) -> None:
    """Assert a measured quantity lies within ``factor``x of the published one.

    The reproduction replaces the EGFET PDK, Synopsys tooling and the real UCI
    datasets with calibrated stand-ins (see DESIGN.md), so absolute equality is
    not expected — but every reproduced quantity must stay in the same regime.
    """
    assert measured > 0, "measured quantity must be positive"
    assert published / factor <= measured <= published * factor, (
        f"measured {measured:.3f} outside {factor}x regime of published {published:.3f}"
    )


@pytest.fixture(scope="session")
def assert_same_regime():
    """The regime-check helper, exposed as a fixture for benchmark modules."""
    return _assert_same_regime


def dataset_block(table, dataset):
    """All Table1 entries of one dataset, keyed by model id."""
    return {e.model: e for e in table.entries if e.dataset == dataset}


@pytest.fixture(scope="session")
def get_block(table1):
    """Accessor returning one dataset's measured/reference rows by model id."""

    def _get(dataset: str):
        return dataset_block(table1, dataset)

    return _get
