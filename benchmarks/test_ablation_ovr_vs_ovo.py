"""Ablation A1: One-vs-Rest against One-vs-One (Section II argument).

The paper selects OvR because it stores fewer support vectors and needs
simpler control than OvO ("the two-fold advantage of using the OvR
algorithm").  This ablation builds the *same sequential architecture* around
an OvR and an OvO model for two datasets with different class counts and
quantifies the storage, control, latency and energy advantage.
"""

import pytest

from repro.core.design_flow import FlowConfig, prepare_dataset, quantize_split_inputs
from repro.core.sequential_svm import SequentialSVMDesign
from repro.ml.multiclass import OneVsOneClassifier, OneVsRestClassifier, n_ovo_classifiers
from repro.ml.quantization import quantize_linear_classifier
from repro.ml.svm import LinearSVC

CONFIG = FlowConfig()


def _build(dataset, strategy):
    split = quantize_split_inputs(prepare_dataset(dataset, CONFIG), CONFIG.input_bits)
    wrapper = OneVsRestClassifier if strategy == "ovr" else OneVsOneClassifier
    classifier = wrapper(LinearSVC(max_iter=CONFIG.svm_max_iter, random_state=0))
    classifier.fit(split.X_train, split.y_train)
    quantized = quantize_linear_classifier(classifier, input_bits=CONFIG.input_bits, weight_bits=6)
    design = SequentialSVMDesign(quantized, dataset=dataset)
    report = design.evaluate(split.X_test, split.y_test, model_name=f"seq ({strategy})")
    return design, report


@pytest.mark.parametrize("dataset,n_classes", [("redwine", 6), ("pendigits", 10)])
def test_ovr_reduces_storage_and_energy(benchmark, dataset, n_classes):
    ovr_design, ovr_report = _build(dataset, "ovr")

    def build_ovo():
        return _build(dataset, "ovo")

    ovo_design, ovo_report = benchmark.pedantic(build_ovo, rounds=1, iterations=1)

    # Stored support vectors: n for OvR, n(n-1)/2 for OvO.
    assert ovr_design.storage.n_words == n_classes
    assert ovo_design.storage.n_words == n_ovo_classifiers(n_classes)
    assert ovr_design.storage.total_bits < ovo_design.storage.total_bits

    # Simpler control: fewer counter bits (or equal) and fewer cycles.
    assert ovr_design.controller.counter_bits <= ovo_design.controller.counter_bits
    assert ovr_report.cycles_per_classification < ovo_report.cycles_per_classification

    # The latency and energy advantage follows directly.
    assert ovr_report.latency_ms < ovo_report.latency_ms
    assert ovr_report.energy_mj < ovo_report.energy_mj

    # And the accuracy cost of OvR is negligible.
    assert ovr_report.accuracy_percent >= ovo_report.accuracy_percent - 3.0


def test_ovr_advantage_grows_with_class_count(benchmark):
    """The storage advantage is (n-1)/2, so PenDigits benefits far more than
    Cardio — the reason the paper's PenDigits baselines blow up."""
    _, redwine_ovr = benchmark.pedantic(lambda: _build("redwine", "ovr"), rounds=1, iterations=1)
    _, redwine_ovo = _build("redwine", "ovo")
    _, pendigits_ovr = _build("pendigits", "ovr")
    _, pendigits_ovo = _build("pendigits", "ovo")
    redwine_ratio = redwine_ovo.energy_mj / redwine_ovr.energy_mj
    pendigits_ratio = pendigits_ovo.energy_mj / pendigits_ovr.energy_mj
    assert pendigits_ratio > redwine_ratio
