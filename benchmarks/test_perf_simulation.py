"""Perf-smoke benchmark: simulator throughput floors and trajectory record.

Runs the fast configuration of :mod:`repro.perf.benchmark`, asserts the
ISSUE's acceptance floors — vectorized ``run_batch`` at least 20x the
per-sample scalar loop on a 1000-sample batch, compiled bit-parallel gate
simulation at least 10x the interpreted walk on 64+ vector sweeps, the
``codegen`` engine at least 3x ``interp`` on the 45-gate multiplier's
packed hot path, the ``native`` (compiled C) engine at least 2x ``codegen``
on the same workload where a C toolchain exists — checks the roofline
section is recorded, and refreshes
``BENCH_simulation.json`` at the repo root so the throughput trajectory is
tracked from this PR onward.

Marked ``perf_smoke`` so it can be selected alone (``pytest -m perf_smoke``)
as a quick regression probe in future PRs.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.perf.benchmark import run_simulation_benchmark, write_benchmark

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Acceptance floors from the ISSUE; measured headroom is >5x above both.
MIN_DATAPATH_SPEEDUP = 20.0
MIN_GATE_LEVEL_SPEEDUP = 10.0
#: Minimum speedup of the bit-parallel sequential (multi-cycle) engine over
#: the interpreted per-cycle walk on 64+ vector batches.
MIN_SEQUENTIAL_SPEEDUP = 10.0
#: Minimum gate-count reduction the pass pipeline must achieve on the
#: hardwired constant-datapath workloads (measured: >60% on the MAC).
MIN_OPT_REDUCTION_PERCENT = 20.0
#: Minimum speedup of the ``codegen`` engine over ``interp`` on the packed
#: hot path (``evaluate_packed_slots``) of the 45-gate array multiplier —
#: the ISSUE 6 floor (measured: 7-8x on the reference machine).
MIN_ENGINE_SPEEDUP = 3.0
#: Minimum gate-evals/s ratio of the ``native`` (compiled C) engine over
#: ``codegen`` on the 45-gate multiplier's roofline workload — the ISSUE 8
#: floor (measured: ~3x on the reference machine at 8192 vectors).  Skipped
#: on hosts without a C toolchain, where ``native`` degrades to ``codegen``.
MIN_NATIVE_VS_CODEGEN = 2.0


@pytest.fixture(scope="module")
def bench_results():
    return run_simulation_benchmark(fast=True)


@pytest.mark.perf_smoke
def test_datapath_batch_speedup_floor(bench_results):
    for name, record in bench_results["datapath"].items():
        assert record["n_samples"] >= 1000
        assert record["speedup"] >= MIN_DATAPATH_SPEEDUP, (
            f"{name}: run_batch only {record['speedup']:.1f}x over the "
            f"scalar loop (floor {MIN_DATAPATH_SPEEDUP}x)"
        )


@pytest.mark.perf_smoke
def test_gate_level_bitsim_speedup_floor(bench_results):
    for name, record in bench_results["gate_level"].items():
        assert record["n_vectors"] >= 64
        assert record["speedup"] >= MIN_GATE_LEVEL_SPEEDUP, (
            f"{name}: bit-parallel sweep only {record['speedup']:.1f}x over "
            f"the interpreted walk (floor {MIN_GATE_LEVEL_SPEEDUP}x)"
        )


@pytest.mark.perf_smoke
def test_sequential_engine_speedup_floor(bench_results):
    """The stateful bit-parallel engine must beat the interpreted per-cycle
    walk on every clocked workload — bit-exactly (the cycle-by-cycle
    equivalence sweep runs inside the benchmark)."""
    assert bench_results["sequential_sim"], "no sequential workloads ran"
    for name, record in bench_results["sequential_sim"].items():
        assert record["equivalent"] == 1.0, f"{name}: sequential trace diverged"
        assert record["n_vectors"] >= 64
        assert record["speedup"] >= MIN_SEQUENTIAL_SPEEDUP, (
            f"{name}: sequential engine only {record['speedup']:.1f}x over "
            f"the per-cycle interpreted walk (floor {MIN_SEQUENTIAL_SPEEDUP}x)"
        )


@pytest.mark.perf_smoke
def test_netlist_optimization_reduction_floor(bench_results):
    """The pass pipeline must remove gates on every constant datapath —
    bit-exactly (the equivalence sweep runs inside the benchmark)."""
    assert bench_results["netlist_opt"], "no netlist-optimization workloads ran"
    for name, record in bench_results["netlist_opt"].items():
        assert record["equivalent"] == 1.0, f"{name}: optimized netlist diverged"
        assert record["gates_removed"] > 0, f"{name}: pipeline removed nothing"
        assert record["reduction_percent"] >= MIN_OPT_REDUCTION_PERCENT, (
            f"{name}: only {record['reduction_percent']:.1f}% of gates removed "
            f"(floor {MIN_OPT_REDUCTION_PERCENT}%)"
        )


@pytest.mark.perf_smoke
def test_engine_speedup_floor(bench_results):
    """The ``codegen`` engine must be at least 3x ``interp`` gate-evals/s on
    the 45-gate array-multiplier packed hot path, and every engine must stay
    bit-exact (the cross-engine equivalence sweep runs inside the benchmark)."""
    record = bench_results["gate_level"]["array_multiplier_5x5"]
    assert record["codegen_speedup_vs_interp"] >= MIN_ENGINE_SPEEDUP, (
        f"codegen engine only {record['codegen_speedup_vs_interp']:.2f}x over "
        f"interp on the 45-gate multiplier (floor {MIN_ENGINE_SPEEDUP}x)"
    )
    for name, rec in bench_results["gate_level"].items():
        assert rec["engines_equivalent"] == 1.0, f"{name}: engines diverged"
        assert rec["fused_speedup_vs_interp"] > 0
        assert rec["codegen_speedup_vs_interp"] > 0
    for name, rec in bench_results["sequential_sim"].items():
        assert rec["engines_equivalent"] == 1.0, f"{name}: engines diverged"
        assert rec["auto_engine_is_codegen"] == 1.0, (
            f"{name}: auto did not resolve the sequential cone to codegen"
        )


@pytest.mark.perf_smoke
def test_native_engine_speedup_floor(bench_results):
    """The ``native`` (compiled C) engine must be at least 2x ``codegen``
    gate-evals/s on the 45-gate multiplier roofline workload, bit-exact
    (the cross-engine equivalence sweep covers native on toolchain hosts).
    Skipped — not failed — where no C compiler exists."""
    from repro.perf.native import native_available

    if not native_available():
        pytest.skip("no C toolchain: native degrades to codegen on this host")
    engines = bench_results["roofline"]["engines"]
    assert "native" in engines, "toolchain present but no native roofline row"
    ratio = (
        engines["native"]["gate_evals_per_s"]
        / engines["codegen"]["gate_evals_per_s"]
    )
    assert ratio >= MIN_NATIVE_VS_CODEGEN, (
        f"native engine only {ratio:.2f}x codegen gate-evals/s on the 45-gate "
        f"multiplier (floor {MIN_NATIVE_VS_CODEGEN}x)"
    )
    for name, rec in bench_results["gate_level"].items():
        assert rec["native_speedup_vs_interp"] > 0, name
    scaling = bench_results["roofline"]["native_thread_scaling"]
    for key in ("threads_1", "threads_2", "threads_4"):
        assert scaling[key]["gate_evals_per_s"] > 0, key
        # Sharding must never *cost* throughput wholesale (it is free on
        # 1-core hosts, a win on real ones); generous slack for noise.
        assert scaling[key]["scaling_vs_1_thread"] > 0.5, key


@pytest.mark.perf_smoke
def test_roofline_recorded(bench_results):
    """The roofline section must relate each engine's throughput to the
    measured memcpy bandwidth of this machine."""
    roofline = bench_results["roofline"]
    assert roofline["memcpy_bytes_per_s"] > 0
    # native additionally appears on hosts with a C toolchain.
    assert set(roofline["engines"]) >= {"interp", "fused", "codegen"}
    for engine, rec in roofline["engines"].items():
        assert rec["gate_evals_per_s"] > 0, f"{engine}: no throughput recorded"
        assert rec["effective_bytes_per_s"] > 0
        assert 0 < rec["fraction_of_memcpy"], engine


@pytest.mark.perf_smoke
def test_record_throughput_trajectory(bench_results):
    path = write_benchmark(bench_results, REPO_ROOT / "BENCH_simulation.json")
    assert path.exists()
    assert bench_results["min_speedups"]["datapath_batch"] > 1.0
    assert bench_results["min_speedups"]["gate_level_bitsim"] > 1.0
    assert bench_results["min_speedups"]["sequential_sim"] > 1.0
    assert (
        bench_results["min_speedups"]["engine_codegen_vs_interp_45g_multiplier"]
        > 1.0
    )
