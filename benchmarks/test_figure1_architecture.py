"""Benchmark: Figure 1 — the sequential SVM architecture, structurally.

Fig. 1 of the paper is the block diagram of the proposed circuit: control
(counter), storage (hardwired MUX), compute engine (m multipliers + a
multi-operand adder) and voter (two registers + one comparator).  This
benchmark regenerates the architecture for the Cardio design, times the
structural generation, and checks that the generated hardware has exactly
the structure the figure describes.
"""

import math

import pytest

from repro.core.sequential_svm import SequentialSVMDesign
from repro.hw.pdk import EGFET_PDK


@pytest.fixture(scope="module")
def flow_result(get_block):
    return get_block("cardio")["ours"].flow_result


def test_generate_architecture(benchmark, flow_result):
    """Time the structural generation of the full sequential SVM circuit."""
    model = flow_result.design.model

    def generate():
        design = SequentialSVMDesign(model, dataset="cardio")
        return design.hardware()

    block = benchmark.pedantic(generate, rounds=3, iterations=1)
    assert block.n_cells() > 0


def test_control_is_a_log2n_counter(benchmark, flow_result):
    benchmark.pedantic(lambda: flow_result.design.controller.hardware(), rounds=1, iterations=1)
    design = flow_result.design
    expected_bits = max(1, math.ceil(math.log2(design.n_classifiers)))
    assert design.controller.counter_bits == expected_bits
    assert design.controller.hardware().counts["DFF"] == expected_bits


def test_storage_holds_one_word_per_support_vector(benchmark, flow_result):
    benchmark.pedantic(lambda: flow_result.design.storage.hardware(), rounds=1, iterations=1)
    design = flow_result.design
    storage = design.storage
    assert storage.n_words == design.n_classifiers
    assert storage.n_values_per_word == design.n_features + 1  # weights + bias
    assert storage.select_bits == design.controller.counter_bits


def test_compute_engine_has_m_multipliers_and_one_adder(benchmark, flow_result):
    benchmark.pedantic(lambda: flow_result.design.engine.hardware(), rounds=1, iterations=1)
    design = flow_result.design
    engine = design.engine
    assert engine.n_multipliers == design.n_features
    # Folding: the engine size is independent of the classifier count.
    assert engine.hardware().counts["AND2"] >= design.n_features * 4


def test_voter_is_two_registers_and_one_comparator(benchmark, flow_result):
    benchmark.pedantic(lambda: flow_result.design.voter.hardware(), rounds=1, iterations=1)
    design = flow_result.design
    voter_block = design.voter.hardware()
    expected_register_bits = design.score_bits + design.controller.counter_bits
    assert voter_block.counts["DFF"] == expected_register_bits
    # A single ripple comparator, not a comparator tree.
    assert voter_block.counts["XNOR2"] == design.score_bits


def test_classification_takes_n_cycles(benchmark, flow_result):
    benchmark.pedantic(lambda: flow_result.design.simulate_sample(flow_result.split.X_test[1]), rounds=1, iterations=1)
    design = flow_result.design
    sample = flow_result.split.X_test[0]
    trace = design.simulate_sample(sample)
    assert trace.n_cycles == design.n_classifiers


def test_component_area_shares_are_sensible(benchmark, flow_result):
    """The compute engine dominates; control is negligible (Fig. 1 intuition)."""
    benchmark.pedantic(lambda: flow_result.design.hardware().area_cm2(EGFET_PDK), rounds=1, iterations=1)
    design = flow_result.design
    areas = {
        "storage": design.storage.hardware().area_cm2(EGFET_PDK),
        "engine": design.engine.hardware().area_cm2(EGFET_PDK),
        "voter": design.voter.hardware().area_cm2(EGFET_PDK),
        "control": design.controller.hardware().area_cm2(EGFET_PDK),
    }
    assert areas["engine"] > areas["storage"]
    assert areas["engine"] > areas["voter"]
    assert areas["control"] < 0.05 * areas["engine"]
