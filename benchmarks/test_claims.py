"""Benchmark: the paper's aggregate claims (Section III text).

Covers the headline numbers the abstract and results section report:

* C1 — average energy improvement of 6.5x (10.6x vs [2], 5.4x vs [3],
  3.46x vs [4]);
* C2 — higher average accuracy than every baseline family;
* C3 — peak power 22.9 mW / average 13.58 mW, every proposed design powered
  by an existing printed battery (Molex 30 mW), unlike most baselines.

The measured aggregates come from the fully regenerated Table I; the checks
verify direction and regime, not exact values (see DESIGN.md).
"""

import pytest

from repro.eval.comparison import battery_feasibility_count
from repro.eval.reference import PAPER_CLAIMS
from repro.eval.reporting import markdown_claims
from repro.eval.table1 import table1_aggregates


def test_claim_c1_energy_improvement(benchmark, table1, aggregates, assert_same_regime):
    """C1: the sequential design reduces energy against every baseline."""
    measured = benchmark.pedantic(lambda: table1_aggregates(table1), rounds=1, iterations=1)
    # Direction: a clear improvement against every baseline family.
    assert measured["energy_improvement_vs_svm2"] > 2.0
    assert measured["energy_improvement_vs_svm3"] > 1.5
    assert measured["energy_improvement_vs_mlp4"] > 1.5
    assert measured["energy_improvement_average"] > 2.0
    # Regime: within 3x of the published factors.
    assert_same_regime(
        measured["energy_improvement_vs_svm2"],
        PAPER_CLAIMS["energy_improvement_vs_svm2"],
        factor=3.0,
    )
    assert_same_regime(
        measured["energy_improvement_vs_svm3"],
        PAPER_CLAIMS["energy_improvement_vs_svm3"],
        factor=3.0,
    )
    assert_same_regime(
        measured["energy_improvement_vs_mlp4"],
        PAPER_CLAIMS["energy_improvement_vs_mlp4"],
        factor=3.0,
    )
    assert_same_regime(
        measured["energy_improvement_average"],
        PAPER_CLAIMS["energy_improvement_average"],
        factor=3.0,
    )


def test_claim_c2_accuracy(benchmark, aggregates):
    """C2: accuracy is at least on par with the SVM baselines and clearly
    better than the MLP baseline.

    The paper reports +2.02 / +3.13 / +4.38 points; with synthetic datasets
    the SVM-vs-SVM gap is within noise, so the check is 'no meaningful loss'
    against the SVM baselines and a clear gain against the MLP baseline.
    """
    benchmark.pedantic(lambda: aggregates, rounds=1, iterations=1)
    assert aggregates["accuracy_gain_vs_svm2"] >= -2.5
    assert aggregates["accuracy_gain_vs_svm3"] >= -2.5
    assert aggregates["accuracy_gain_vs_mlp4"] >= 1.0


def test_claim_c3_power_and_battery(benchmark, table1, aggregates, assert_same_regime):
    """C3: every proposed design fits the Molex 30 mW printed battery."""
    ours_rows = benchmark.pedantic(lambda: table1.rows_for_model("ours"), rounds=1, iterations=1)
    budget = PAPER_CLAIMS["battery_budget_mw"]
    assert battery_feasibility_count(ours_rows, budget) == len(ours_rows)
    assert aggregates["peak_power_mw"] <= budget
    assert_same_regime(aggregates["peak_power_mw"], PAPER_CLAIMS["peak_power_mw"], factor=2.0)
    assert_same_regime(
        aggregates["average_power_mw"], PAPER_CLAIMS["average_power_mw"], factor=2.0
    )
    assert_same_regime(
        aggregates["average_energy_mj"], PAPER_CLAIMS["average_energy_mj"], factor=2.0
    )
    # Most state-of-the-art designs exceed the printed battery budget.
    baseline_rows = [
        e.measured for e in table1.entries if e.model != "ours"
    ]
    feasible_baselines = battery_feasibility_count(baseline_rows, budget)
    assert feasible_baselines <= len(baseline_rows) // 2


def test_report_measured_vs_published(benchmark, table1, aggregates, capsys):
    """Print the measured-vs-published claim table into the benchmark log."""
    text = benchmark.pedantic(lambda: markdown_claims(aggregates, PAPER_CLAIMS), rounds=1, iterations=1)
    print("\n" + text)
    assert "energy_improvement_average" in text
