"""Ablation A3: post-training precision search (Section II).

"We train our SVMs with low-precision inputs and post-training, we quantize
the SVM weights and biases to the lowest precision that can retain
acceptable accuracy."  This ablation sweeps the weight precision for each
dataset, verifies that the automatic search lands on (near) the sweet spot,
and quantifies how much hardware the precision search saves compared to a
conservative 8-bit design.
"""

import pytest

from repro.core.sequential_svm import SequentialSVMDesign
from repro.eval.reference import TABLE1_DATASETS
from repro.ml.quantization import quantize_linear_classifier, search_lowest_precision
from repro.ml.multiclass import OneVsRestClassifier
from repro.ml.svm import LinearSVC
from repro.core.design_flow import FlowConfig, prepare_dataset, quantize_split_inputs

CONFIG = FlowConfig()


@pytest.fixture(scope="module")
def trained(get_block):
    """OvR classifiers and splits for every dataset (reuse the table's splits)."""
    out = {}
    for dataset in TABLE1_DATASETS:
        flow = get_block(dataset)["ours"].flow_result
        split = quantize_split_inputs(
            prepare_dataset(dataset, CONFIG), CONFIG.input_bits
        )
        classifier = OneVsRestClassifier(LinearSVC(max_iter=CONFIG.svm_max_iter, random_state=0))
        classifier.fit(split.X_train, split.y_train)
        out[dataset] = (classifier, split, flow)
    return out


@pytest.mark.parametrize("dataset", list(TABLE1_DATASETS))
def test_precision_sweep_and_search(benchmark, dataset, trained):
    classifier, split, flow = trained[dataset]

    def run_search():
        return search_lowest_precision(
            classifier,
            split.X_test,
            split.y_test,
            input_bits=CONFIG.input_bits,
            max_weight_bits=CONFIG.max_weight_bits,
            min_weight_bits=CONFIG.min_weight_bits,
            accuracy_tolerance=CONFIG.accuracy_tolerance,
        )

    result = benchmark.pedantic(run_search, rounds=1, iterations=1)

    # The search must respect its own contract: accuracy within tolerance.
    assert result.accuracy + CONFIG.accuracy_tolerance >= result.float_accuracy
    assert CONFIG.min_weight_bits <= result.weight_bits <= CONFIG.max_weight_bits
    # And it must agree with the bit width the full flow used for Table I.
    assert result.weight_bits == flow.weight_bits_used

    # Sweep: energy decreases (weakly) as precision decreases.
    energies = {}
    for bits in range(CONFIG.max_weight_bits, CONFIG.min_weight_bits - 1, -1):
        quantized = quantize_linear_classifier(
            classifier, input_bits=CONFIG.input_bits, weight_bits=bits
        )
        design = SequentialSVMDesign(quantized, dataset=dataset)
        report = design.evaluate(split.X_test, split.y_test)
        energies[bits] = report.energy_mj
    assert energies[CONFIG.min_weight_bits] < energies[CONFIG.max_weight_bits]

    # The searched precision saves hardware relative to a conservative 8-bit design.
    assert energies[result.weight_bits] <= energies[CONFIG.max_weight_bits] * 1.001


def test_low_precision_inputs_are_essential(benchmark, trained):
    """Re-quantizing the inputs coarser than trained-for costs accuracy,
    confirming that input precision is a co-design parameter, not a detail."""
    classifier, split, _ = trained["pendigits"]
    fine = benchmark.pedantic(
        lambda: quantize_linear_classifier(classifier, input_bits=CONFIG.input_bits, weight_bits=6),
        rounds=1, iterations=1,
    )
    coarse = quantize_linear_classifier(classifier, input_bits=1, weight_bits=6)
    acc_fine = fine.score(split.X_test, split.y_test)
    acc_coarse = coarse.score(split.X_test, split.y_test)
    assert acc_fine > acc_coarse
