"""Benchmark: Table I, RedWine block.

Regenerates the RedWine quality (11 features, 6 ordinal classes) rows of the paper's Table I with the full flow, times
the hardware generation/analysis of every reported design, and checks that
the measured rows stay in the published regime and preserve the paper's
qualitative conclusions (energy winner, battery feasibility, clock ordering).
"""

import pytest

from _table1_common import (
    bench_row,
    check_block_orderings,
    check_mlp4_row,
    check_proposed_row,
    check_svm2_row,
    check_svm3_row,
)

DATASET = "redwine"


@pytest.fixture(scope="module")
def block(get_block):
    return get_block(DATASET)


def test_proposed_sequential_svm(benchmark, block, assert_same_regime):
    report = bench_row(benchmark, block["ours"])
    assert report.cycles_per_classification == block["ours"].measured.cycles_per_classification
    check_proposed_row(block["ours"], assert_same_regime)


def test_parallel_svm_exact_baseline(benchmark, block, assert_same_regime):
    if "svm[2]" not in block:
        pytest.skip("the paper reports no SVM [2] row for this dataset")
    bench_row(benchmark, block["svm[2]"])
    check_svm2_row(block["svm[2]"], assert_same_regime)


def test_parallel_svm_approx_baseline(benchmark, block, assert_same_regime):
    if "svm[3]" not in block:
        pytest.skip("the paper reports no SVM [3] row for this dataset")
    bench_row(benchmark, block["svm[3]"])
    check_svm3_row(block["svm[3]"], assert_same_regime)


def test_parallel_mlp_baseline(benchmark, block, assert_same_regime):
    if "mlp[4]" not in block:
        pytest.skip("the paper reports no MLP [4] row for this dataset")
    bench_row(benchmark, block["mlp[4]"])
    check_mlp4_row(block["mlp[4]"], assert_same_regime)


def test_block_reproduces_table1_conclusions(benchmark, block):
    benchmark.pedantic(lambda: check_block_orderings(block), rounds=1, iterations=1)
