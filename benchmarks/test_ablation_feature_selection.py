"""Ablation A6: feature-count co-design (extension of the paper's flow).

Each input feature of the sequential SVM costs one multiplier, one storage
column and one sensor interface, so feature selection is a natural next
co-design lever beyond the paper's precision search.  This benchmark sweeps
the feature count on the Cardio design (21 correlated cardiotocography
features, several of which are redundant) and checks that

* hardware cost (area, power, energy) decreases monotonically-enough with
  the feature count, and
* a meaningful energy reduction is available within a small accuracy budget.
"""

import pytest

from repro.core.design_flow import FlowConfig, prepare_dataset, quantize_split_inputs
from repro.ml.feature_selection import co_design_sweep

CONFIG = FlowConfig()
DATASET = "cardio"
FEATURE_COUNTS = (21, 16, 12, 8, 5)


@pytest.fixture(scope="module")
def sweep(get_block, benchmark_sweep_cache={}):
    if "sweep" not in benchmark_sweep_cache:
        split = quantize_split_inputs(prepare_dataset(DATASET, CONFIG), CONFIG.input_bits)
        benchmark_sweep_cache["sweep"] = co_design_sweep(
            split,
            feature_counts=FEATURE_COUNTS,
            input_bits=CONFIG.input_bits,
            weight_bits=6,
            svm_max_iter=CONFIG.svm_max_iter,
            dataset=DATASET,
        )
    return benchmark_sweep_cache["sweep"]


def test_feature_count_sweep(benchmark, get_block):
    split = quantize_split_inputs(prepare_dataset(DATASET, CONFIG), CONFIG.input_bits)

    def run_one_point():
        return co_design_sweep(
            split,
            feature_counts=(12,),
            input_bits=CONFIG.input_bits,
            weight_bits=6,
            svm_max_iter=CONFIG.svm_max_iter,
            dataset=DATASET,
        )

    result = benchmark.pedantic(run_one_point, rounds=1, iterations=1)
    assert result.points[0].n_features == 12


def test_hardware_shrinks_with_feature_count(benchmark, sweep):
    benchmark.pedantic(lambda: sweep.points, rounds=1, iterations=1)
    by_count = {p.n_features: p for p in sweep.points}
    counts = sorted(by_count)
    areas = [by_count[c].area_cm2 for c in counts]
    energies = [by_count[c].energy_mj for c in counts]
    # Fewer features -> less hardware (strict at the extremes, monotone overall).
    assert areas == sorted(areas)
    assert energies[0] < energies[-1]
    assert by_count[counts[0]].area_cm2 < 0.6 * by_count[counts[-1]].area_cm2


def test_energy_saving_available_within_accuracy_budget(benchmark, sweep):
    full = benchmark.pedantic(
        lambda: max(sweep.points, key=lambda p: p.n_features), rounds=1, iterations=1
    )
    chosen = sweep.best_within_accuracy_drop(max_drop_percent=2.0)
    assert chosen.accuracy_percent >= full.accuracy_percent - 2.0
    # The redundant cardiotocography features leave real savings on the table.
    assert chosen.energy_mj <= full.energy_mj
    assert chosen.n_features <= full.n_features
