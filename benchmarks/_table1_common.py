"""Shared logic for the per-dataset Table I benchmarks.

Every Table I benchmark module does the same two things for its dataset:

* **time** the hardware-generation + analysis step of every reported design
  (the part of the flow an EDA engineer iterates on once models are trained);
* **check the reproduction shape**: the measured row must stay in the same
  regime as the published row, and the qualitative orderings the paper's
  conclusions rest on (who wins energy, who fits the battery, who clocks
  faster) must hold.

Absolute tolerances are deliberately loose (see DESIGN.md's calibration
policy): the PDK, the EDA tooling and the datasets are all substitutions, so
only the regime and the ordering are meaningful reproduction targets.
"""

from __future__ import annotations

from repro.eval.reference import PAPER_CLAIMS


def bench_row(benchmark, entry):
    """Benchmark regenerating and re-analysing one Table I design."""
    flow = entry.flow_result
    design = flow.design
    X_test, y_test = flow.split.X_test, flow.split.y_test

    def regenerate():
        return design.evaluate(X_test, y_test)

    report = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    assert report.energy_mj > 0
    return report


def check_proposed_row(entry, assert_same_regime):
    """Regime checks of one measured 'ours' row against the published row."""
    measured, published = entry.measured, entry.reference
    assert abs(measured.accuracy_percent - published.accuracy_percent) <= 8.0
    assert_same_regime(measured.area_cm2, published.area_cm2, factor=2.5)
    assert_same_regime(measured.power_mw, published.power_mw, factor=2.0)
    assert_same_regime(measured.energy_mj, published.energy_mj, factor=2.5)
    assert_same_regime(measured.frequency_hz, published.frequency_hz, factor=2.0)
    # The battery-feasibility claim must hold row by row.
    assert measured.power_mw <= PAPER_CLAIMS["battery_budget_mw"]


def check_svm2_row(entry, assert_same_regime):
    """Regime checks of the exact parallel-SVM baseline row."""
    measured, published = entry.measured, entry.reference
    assert abs(measured.accuracy_percent - published.accuracy_percent) <= 10.0
    assert_same_regime(measured.power_mw, published.power_mw, factor=3.0)
    assert_same_regime(measured.energy_mj, published.energy_mj, factor=2.5)


def check_svm3_row(entry, assert_same_regime):
    """Regime checks of the approximate parallel-SVM baseline row."""
    measured, published = entry.measured, entry.reference
    assert abs(measured.accuracy_percent - published.accuracy_percent) <= 12.0
    assert_same_regime(measured.energy_mj, published.energy_mj, factor=3.5)


def check_mlp4_row(entry, assert_same_regime):
    """Regime checks of the bespoke-MLP baseline row.

    The published MLP baselines were aggressively co-designed (pruned to a
    handful of neurons per dataset), which our generic MLP trainer does not
    replicate, so only the energy order of magnitude is checked.
    """
    measured, published = entry.measured, entry.reference
    assert_same_regime(measured.energy_mj, published.energy_mj, factor=12.0)


def check_block_orderings(block):
    """The qualitative Table I conclusions for one dataset block."""
    ours = block["ours"].measured
    for model in ("svm[2]", "svm[3]"):
        if model in block:
            baseline = block[model].measured
            # The headline: the sequential design wins on energy.
            assert ours.energy_mj < baseline.energy_mj
            # And does so at comparable (or better) accuracy.
            assert ours.accuracy_percent >= baseline.accuracy_percent - 4.0
    if "svm[2]" in block:
        # Folded datapath -> shorter critical path -> higher clock frequency.
        assert ours.frequency_hz > block["svm[2]"].measured.frequency_hz
