"""Ablation A2: bespoke MUX storage against the crossbar-ROM alternative.

Section II: "We also evaluated a crossbar-based Read-Only Memory (ROM)
alternative; however for the required storage size, crossbars prove more
costly, mainly due to the need for printed Analog-to-Digital Converters
(ADCs)."  This ablation reproduces that design decision for every dataset.
"""

import pytest

from repro.core.sequential_svm import SequentialSVMDesign
from repro.eval.reference import TABLE1_DATASETS
from repro.hw.pdk import EGFET_PDK


@pytest.mark.parametrize("dataset", list(TABLE1_DATASETS))
def test_mux_storage_beats_crossbar_rom(benchmark, dataset, get_block):
    flow = get_block(dataset)["ours"].flow_result
    model = flow.design.model
    X_test, y_test = flow.split.X_test, flow.split.y_test

    mux_design = SequentialSVMDesign(model, storage_style="mux", dataset=dataset)
    mux_report = mux_design.evaluate(X_test, y_test, model_name="seq (mux)")

    def build_crossbar():
        design = SequentialSVMDesign(model, storage_style="crossbar", dataset=dataset)
        return design, design.evaluate(X_test, y_test, model_name="seq (crossbar)")

    rom_design, rom_report = benchmark.pedantic(build_crossbar, rounds=1, iterations=1)

    # The stored contents are identical...
    for index in range(mux_design.storage.n_words):
        assert (mux_design.storage.read(index) == rom_design.storage.read(index)).all()

    # ...but the crossbar pays for ADC read-out on every column.
    mux_storage_area = mux_design.storage.hardware().area_cm2(EGFET_PDK)
    rom_storage_area = rom_design.storage.hardware().area_cm2(EGFET_PDK)
    assert rom_storage_area > 2.0 * mux_storage_area

    # Which shows up in every total metric of the design.
    assert rom_report.area_cm2 > mux_report.area_cm2
    assert rom_report.power_mw > mux_report.power_mw
    assert rom_report.energy_mj > mux_report.energy_mj

    # Functional behaviour is unaffected by the storage style.
    assert rom_report.accuracy_percent == pytest.approx(mux_report.accuracy_percent)
