"""Perf-smoke probes for the batch serving subsystem.

Runs the same measurement as ``scripts/bench_serving.py`` (fewer requests so
the tier-1 suite stays fast), refreshes ``BENCH_serving.json`` and asserts
the floors every PR must keep:

* micro-batched concurrent serving reaches >=5x the one-request-at-a-time
  throughput (the whole point of the micro-batching queue);
* served class ids are bit-identical to the design's direct ``run_batch``;
* micro-batches actually coalesce (mean batch size well above 1);
* the worker fleet answers bit-identically to the ``workers=0`` oracle on a
  4-model mix, and — on hosts with enough cores for process parallelism to
  exist — reaches >=2.5x the single-process aggregate throughput.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.serve.bench import (
    run_multi_worker_benchmark,
    run_serving_benchmark,
    write_benchmark,
)

#: The acceptance floor: micro-batched throughput vs the serial path.
SPEEDUP_FLOOR = 5.0

#: The acceptance floor: fleet aggregate req/s vs single process at 4 workers.
FLEET_SPEEDUP_FLOOR = 2.5

#: Cores needed before the fleet floor is physically meaningful (4 workers
#: plus the frontend cannot beat one process on fewer).
FLEET_FLOOR_MIN_CPUS = 4


def _usable_cpus() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


@pytest.fixture(scope="module")
def serving_results():
    """One shared benchmark run (trains the fast-config model once)."""
    return run_serving_benchmark(n_requests=2048, n_serial=256)


@pytest.fixture(scope="module")
def fleet_results():
    """One shared multi-worker run (4-model mix, 4 workers vs the oracle)."""
    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("fleet benchmark needs the fork start method")
    return run_multi_worker_benchmark(
        requests_per_client=512, slo_duration_s=1.0
    )


@pytest.mark.perf_smoke
def test_microbatched_throughput_floor(serving_results):
    """Concurrent micro-batched serving is >=5x one-request-at-a-time."""
    best = serving_results["best"]
    assert best["speedup_vs_serial"] >= SPEEDUP_FLOOR, (
        f"micro-batched serving reached only "
        f"{best['speedup_vs_serial']:.1f}x the serial path "
        f"(floor: {SPEEDUP_FLOOR}x; "
        f"serial {serving_results['serial']['requests_per_s']:.0f} req/s, "
        f"batched {best['requests_per_s']:.0f} req/s)"
    )


@pytest.mark.perf_smoke
def test_served_predictions_bit_identical(serving_results):
    """Every served class id equals the direct ``run_batch`` answer."""
    assert serving_results["bit_identical_to_run_batch"]


@pytest.mark.perf_smoke
def test_microbatches_coalesce(serving_results):
    """Under concurrent load the queue actually builds multi-sample batches."""
    largest = max(serving_results["batched"], key=lambda m: m["max_batch_size"])
    assert largest["mean_batch_size"] > 1.5, (
        f"mean micro-batch size {largest['mean_batch_size']:.2f}: requests "
        "are not coalescing"
    )


@pytest.mark.perf_smoke
def test_fleet_bit_identical_to_oracle(fleet_results):
    """The worker fleet answers exactly like the workers=0 single process.

    Asserted unconditionally: bit-exactness is structural (a worker embeds
    the oracle server) and must hold on any host, fast or slow.
    """
    assert fleet_results["bit_identical_to_single_process"]
    assert fleet_results["fleet"]["n_errors"] == 0
    assert fleet_results["fleet"]["workers_alive"] == fleet_results["workers"]
    assert fleet_results["fleet"]["worker_restarts"] == 0


@pytest.mark.perf_smoke
def test_fleet_slo_sections_present(fleet_results):
    """Sustained and bursty open-loop runs report full latency tails."""
    for pattern in ("sustained", "bursty"):
        slo = fleet_results["slo"][pattern]
        assert slo["n_requests"] > 0
        assert (
            0.0
            <= slo["latency_p50_ms"]
            <= slo["latency_p99_ms"]
            <= slo["latency_p999_ms"]
        )
    assert fleet_results["saturation"]["saturation_rate_per_s"] > 0.0


@pytest.mark.perf_smoke
@pytest.mark.skipif(
    _usable_cpus() < FLEET_FLOOR_MIN_CPUS,
    reason=f"fleet speedup floor needs >= {FLEET_FLOOR_MIN_CPUS} usable cores "
    f"(host has {_usable_cpus()}): 4 worker processes cannot outrun one "
    "process without processor parallelism",
)
def test_fleet_throughput_floor(fleet_results):
    """4 workers on a 4-model mix reach >=2.5x single-process aggregate req/s."""
    speedup = fleet_results["speedup_vs_single_process"]
    assert speedup >= FLEET_SPEEDUP_FLOOR, (
        f"fleet reached only {speedup:.2f}x the single-process server "
        f"(floor: {FLEET_SPEEDUP_FLOOR}x on "
        f"{fleet_results['effective_cpus']:.0f} CPUs; single "
        f"{fleet_results['single_process']['aggregate_requests_per_s']:.0f} "
        f"req/s, fleet "
        f"{fleet_results['fleet']['aggregate_requests_per_s']:.0f} req/s)"
    )


@pytest.mark.perf_smoke
def test_record_serving_benchmark(serving_results, fleet_results):
    """Refresh the tracked ``BENCH_serving.json`` artifact (fleet included)."""
    results = dict(serving_results)
    results["multi_worker"] = fleet_results
    path = write_benchmark(results)
    assert path.is_file()
