"""Perf-smoke probes for the batch serving subsystem.

Runs the same measurement as ``scripts/bench_serving.py`` (fewer requests so
the tier-1 suite stays fast), refreshes ``BENCH_serving.json`` and asserts
the floors every PR must keep:

* micro-batched concurrent serving reaches >=5x the one-request-at-a-time
  throughput (the whole point of the micro-batching queue);
* served class ids are bit-identical to the design's direct ``run_batch``;
* micro-batches actually coalesce (mean batch size well above 1).
"""

from __future__ import annotations

import pytest

from repro.serve.bench import run_serving_benchmark, write_benchmark

#: The acceptance floor: micro-batched throughput vs the serial path.
SPEEDUP_FLOOR = 5.0


@pytest.fixture(scope="module")
def serving_results():
    """One shared benchmark run (trains the fast-config model once)."""
    return run_serving_benchmark(n_requests=2048, n_serial=256)


@pytest.mark.perf_smoke
def test_microbatched_throughput_floor(serving_results):
    """Concurrent micro-batched serving is >=5x one-request-at-a-time."""
    best = serving_results["best"]
    assert best["speedup_vs_serial"] >= SPEEDUP_FLOOR, (
        f"micro-batched serving reached only "
        f"{best['speedup_vs_serial']:.1f}x the serial path "
        f"(floor: {SPEEDUP_FLOOR}x; "
        f"serial {serving_results['serial']['requests_per_s']:.0f} req/s, "
        f"batched {best['requests_per_s']:.0f} req/s)"
    )


@pytest.mark.perf_smoke
def test_served_predictions_bit_identical(serving_results):
    """Every served class id equals the direct ``run_batch`` answer."""
    assert serving_results["bit_identical_to_run_batch"]


@pytest.mark.perf_smoke
def test_microbatches_coalesce(serving_results):
    """Under concurrent load the queue actually builds multi-sample batches."""
    largest = max(serving_results["batched"], key=lambda m: m["max_batch_size"])
    assert largest["mean_batch_size"] > 1.5, (
        f"mean micro-batch size {largest['mean_batch_size']:.2f}: requests "
        "are not coalescing"
    )


@pytest.mark.perf_smoke
def test_record_serving_benchmark(serving_results):
    """Refresh the tracked ``BENCH_serving.json`` artifact."""
    path = write_benchmark(serving_results)
    assert path.is_file()
