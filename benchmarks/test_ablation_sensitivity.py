"""Ablation A5: PDK-calibration sensitivity (robustness of the conclusions).

The absolute numbers of this reproduction depend on a calibrated stand-in
for the EGFET PDK.  This benchmark re-prices the already-generated Cardio
and RedWine designs under +/-30 % perturbations of every calibration
parameter (area, static power, switching energy, delay) and checks that the
paper's three qualitative conclusions hold at *every* corner:

* the sequential design still uses less energy than both parallel SVM baselines,
* it still fits the Molex 30 mW printed battery,
* it still clocks faster than the parallel designs.
"""

import pytest

from repro.eval.sensitivity import DEFAULT_CORNERS, sweep_pdk_parameters


@pytest.mark.parametrize("dataset", ["cardio", "redwine"])
def test_conclusions_survive_pdk_perturbations(benchmark, dataset, get_block):
    block = get_block(dataset)
    flow_results = [
        entry.flow_result
        for model, entry in block.items()
        if model in ("ours", "svm[2]", "svm[3]")
    ]

    def run_sweep():
        return sweep_pdk_parameters(flow_results, corners=DEFAULT_CORNERS, dataset=dataset)

    report = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    assert len(report.corners) == len(DEFAULT_CORNERS)
    assert report.conclusion_holds_everywhere("energy_win")
    assert report.conclusion_holds_everywhere("battery_fit", budget_mw=30.0)
    assert report.conclusion_holds_everywhere("faster_clock")

    low, high = report.energy_improvement_range()
    assert low > 1.0, "energy win must hold even at the worst corner"
    assert high < 50.0, "no corner should produce an implausible improvement"


def test_power_scales_as_expected_with_static_corner(benchmark, get_block):
    """Sanity of the corner mechanics: +30 % static power raises the proposed
    design's power by 15-30 % (static is the larger share of its power)."""
    from repro.eval.sensitivity import PDKCorner

    flow_results = [get_block("cardio")["ours"].flow_result]
    corners = (PDKCorner("nominal"), PDKCorner("static+30%", static_power_scale=1.3))

    report = benchmark.pedantic(
        lambda: sweep_pdk_parameters(flow_results, corners=corners, dataset="cardio"),
        rounds=1,
        iterations=1,
    )
    nominal = report.corners[0].reports["ours"].power_mw
    perturbed = report.corners[1].reports["ours"].power_mw
    increase = perturbed / nominal
    assert 1.10 <= increase <= 1.30
